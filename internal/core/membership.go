package core

import (
	"bytes"
	"errors"
	"time"

	"github.com/octopus-dht/octopus/internal/chord"
	"github.com/octopus-dht/octopus/internal/id"
	"github.com/octopus-dht/octopus/internal/transport"
	"github.com/octopus-dht/octopus/internal/xcrypto"
)

// Online membership: the CA side of dynamic join (§3.2 — certificates are
// the Sybil limit, so admission IS certificate issuance), the node-side
// admission check, and the wire-routed rejoin used by churn. The message
// codes extend the 0x03xx membership registry started in internal/chord.

// ErrAdmissionRefused is reported when the CA declines to certify a joiner.
var ErrAdmissionRefused = errors.New("core: CA refused to certify the joiner")

// CertIssueReq asks the CA to certify a new identity at join time. The
// joiner mints its own key pair and ring identifier; the CA enforces
// uniqueness and (on transports with dynamic address tables) allocates the
// network address the certificate binds.
type CertIssueReq struct {
	// ID is the joiner's chosen ring identifier.
	ID id.ID
	// Addr is the proposed network address. In-process deployments reuse
	// the slot being replaced; NoAddr asks the CA to allocate one (the
	// octopusd -join path).
	Addr transport.Addr
	// Key is the joiner's public key, to be bound by the certificate.
	Key xcrypto.PublicKey
	// Endpoint is the joiner's dialable TCP endpoint (socket deployments
	// only; empty in-process).
	Endpoint string
	// WantRoster requests the directory snapshot and endpoint table in
	// the response. Out-of-process joiners need both; in-process rejoins
	// share the directory already and skip the bytes.
	WantRoster bool
}

// Size implements transport.Message.
func (m CertIssueReq) Size() int { return transport.EncodedSize(m) }

// CertIssueResp carries the CA's admission verdict and, on success, the
// issued certificate plus everything a fresh process needs to participate:
// the CA public key, the identity roster, and the endpoint table.
type CertIssueResp struct {
	OK bool
	// Self is the certified identity: the joiner's ID at its (possibly
	// CA-allocated) address.
	Self chord.Peer
	// Cert is the issued certificate.
	Cert xcrypto.Certificate
	// CAKey is the CA's public key (verifies Cert and future announces).
	CAKey xcrypto.PublicKey
	// Roster is the directory snapshot (WantRoster only).
	Roster []RosterEntry
	// Endpoints is the slot-indexed endpoint table including the joiner
	// (WantRoster only, socket deployments only).
	Endpoints []string
	// SlotSeqs is the slot-indexed table of the highest admission
	// ordinal per slot (0 = static slot, never dynamically granted),
	// aligned with Endpoints. The joiner seeds its replay protection
	// from it, so a captured announce for a slot's previous occupant
	// cannot rebind the slot even in a process that never saw the newer
	// announce.
	SlotSeqs []uint64
}

// Size implements transport.Message.
func (m CertIssueResp) Size() int { return transport.EncodedSize(m) }

// EndpointAnnounce is broadcast by the CA when it admits a joiner: one
// one-way message per known process, carrying the joiner's certificate and
// endpoint so every process can extend its directory and address table
// before the joiner's traffic arrives.
type EndpointAnnounce struct {
	Who      chord.Peer
	Endpoint string
	Cert     xcrypto.Certificate
	// Seq is the CA's monotonically increasing admission ordinal,
	// covered by Sig. Receivers track the highest sequence seen per
	// address slot and ignore lower ones, so a captured announce for a
	// RETIRED identity cannot be replayed to rebind its reused slot.
	Seq uint64
	// Sig is the CA's attestation over (Seq, Who, Endpoint) — see
	// attestedEndpoint. The certificate's own signature does not cover
	// the endpoint string, so without this a replayed announce could
	// rebind a live slot to an attacker-chosen endpoint.
	Sig []byte
}

// Size implements transport.Message.
func (m EndpointAnnounce) Size() int { return transport.EncodedSize(m) }

// RingAdmitReq is the bootstrap-channel admission request: what a slotless
// `octopusd -join` process sends (nettransport.BootstrapCall) to any daemon
// of a live deployment. The daemon relays it to the CA as a CertIssueReq
// and returns the grant together with the deployment pointers the joiner
// cannot know yet.
type RingAdmitReq struct {
	ID       id.ID
	Key      xcrypto.PublicKey
	Endpoint string
}

// Size implements transport.Message.
func (m RingAdmitReq) Size() int { return transport.EncodedSize(m) }

// RingAdmitResp answers a RingAdmitReq.
type RingAdmitResp struct {
	OK bool
	// Grant is the CA's CertIssueResp (certificate, roster, endpoint
	// table).
	Grant CertIssueResp
	// CAAddr is the CA's address slot.
	CAAddr transport.Addr
	// Bootstrap is a live ring member the joiner should join through.
	Bootstrap chord.Peer
}

// Size implements transport.Message.
func (m RingAdmitResp) Size() int { return transport.EncodedSize(m) }

// CertRetireReq tells the CA a certified joiner is departing for good: the
// CA drops the grant from its re-announce set, releases the endpoint's
// admission quota, and REVOKES the identity — retirement is terminal,
// because the slot becomes reusable and a still-valid certificate binding
// a recycled slot must never re-enter the ring. Authority is proof of key
// possession: Sig is the identity's own signature over
// RetireStatement(Who) — frame-header origins are forgeable on a socket
// transport, signatures are not.
type CertRetireReq struct {
	Who chord.Peer
	Sig []byte
}

// Size implements transport.Message.
func (m CertRetireReq) Size() int { return transport.EncodedSize(m) }

// CertRetireResp acknowledges a retirement.
type CertRetireResp struct {
	OK bool
}

// Size implements transport.Message.
func (m CertRetireResp) Size() int { return transport.EncodedSize(m) }

// RevocationAnnounce is broadcast by the CA when it revokes an identity,
// so every process's directory learns the revocation — without it, the
// join-admission revocation check would only bite in the CA's own process
// (certificates never expire, so a revoked node's certificate still
// verifies everywhere else).
type RevocationAnnounce struct {
	Node id.ID
	// Sig is the CA's attestation over the revocation statement.
	Sig []byte
}

// Size implements transport.Message.
func (m RevocationAnnounce) Size() int { return transport.EncodedSize(m) }

// Wire type codes of the core half of the membership registry (0x03xx).
const (
	wireCertIssueReq       = 0x0310
	wireCertIssueResp      = 0x0311
	wireEndpointAnnounce   = 0x0312
	wireRingAdmitReq       = 0x0313
	wireRingAdmitResp      = 0x0314
	wireCertRetireReq      = 0x0315
	wireCertRetireResp     = 0x0316
	wireRevocationAnnounce = 0x0317
)

func init() {
	transport.RegisterType(wireCertIssueReq, func(r *transport.Reader) transport.Wire {
		return CertIssueReq{
			ID:         id.ID(r.U64()),
			Addr:       r.Addr(),
			Key:        xcrypto.PublicKey(r.Bytes16()),
			Endpoint:   string(r.Bytes16()),
			WantRoster: r.Bool(),
		}
	})
	transport.RegisterType(wireCertIssueResp, func(r *transport.Reader) transport.Wire {
		m := CertIssueResp{
			OK:    r.Bool(),
			Self:  chord.DecodePeer(r),
			Cert:  xcrypto.UnmarshalCertificate(r),
			CAKey: xcrypto.PublicKey(r.Bytes16()),
		}
		if n := int(r.U16()); n > 0 {
			if r.Err() != nil || r.Remaining() < n*10 {
				r.Fail()
				return CertIssueResp{}
			}
			m.Roster = make([]RosterEntry, n)
			for i := range m.Roster {
				m.Roster[i] = RosterEntry{ID: id.ID(r.U64()), Key: xcrypto.PublicKey(r.Bytes16())}
			}
		}
		if n := int(r.U16()); n > 0 {
			if r.Err() != nil || r.Remaining() < n*2 {
				r.Fail()
				return CertIssueResp{}
			}
			m.Endpoints = make([]string, n)
			for i := range m.Endpoints {
				m.Endpoints[i] = string(r.Bytes16())
			}
		}
		if n := int(r.U16()); n > 0 {
			if r.Err() != nil || r.Remaining() < n*8 {
				r.Fail()
				return CertIssueResp{}
			}
			m.SlotSeqs = make([]uint64, n)
			for i := range m.SlotSeqs {
				m.SlotSeqs[i] = r.U64()
			}
		}
		return m
	})
	transport.RegisterType(wireEndpointAnnounce, func(r *transport.Reader) transport.Wire {
		return EndpointAnnounce{
			Who:      chord.DecodePeer(r),
			Endpoint: string(r.Bytes16()),
			Cert:     xcrypto.UnmarshalCertificate(r),
			Seq:      r.U64(),
			Sig:      r.Bytes16(),
		}
	})
	transport.RegisterType(wireRingAdmitReq, func(r *transport.Reader) transport.Wire {
		return RingAdmitReq{
			ID:       id.ID(r.U64()),
			Key:      xcrypto.PublicKey(r.Bytes16()),
			Endpoint: string(r.Bytes16()),
		}
	})
	transport.RegisterType(wireCertRetireReq, func(r *transport.Reader) transport.Wire {
		return CertRetireReq{Who: chord.DecodePeer(r), Sig: r.Bytes16()}
	})
	transport.RegisterType(wireCertRetireResp, func(r *transport.Reader) transport.Wire {
		return CertRetireResp{OK: r.Bool()}
	})
	transport.RegisterType(wireRevocationAnnounce, func(r *transport.Reader) transport.Wire {
		return RevocationAnnounce{Node: id.ID(r.U64()), Sig: r.Bytes16()}
	})
	transport.RegisterType(wireRingAdmitResp, func(r *transport.Reader) transport.Wire {
		m := RingAdmitResp{OK: r.Bool(), CAAddr: r.Addr(), Bootstrap: chord.DecodePeer(r)}
		if grant, ok := transport.DecodeNested(r).(CertIssueResp); ok {
			m.Grant = grant
		} else {
			r.Fail()
			return RingAdmitResp{}
		}
		return m
	})
}

// WireType implements transport.Wire.
func (CertIssueReq) WireType() uint16 { return wireCertIssueReq }

// EncodePayload implements transport.Wire.
func (m CertIssueReq) EncodePayload(w *transport.Writer) {
	w.U64(uint64(m.ID))
	w.Addr(m.Addr)
	w.Bytes16(m.Key)
	w.Bytes16([]byte(m.Endpoint))
	w.Bool(m.WantRoster)
}

// WireType implements transport.Wire.
func (CertIssueResp) WireType() uint16 { return wireCertIssueResp }

// EncodePayload implements transport.Wire.
func (m CertIssueResp) EncodePayload(w *transport.Writer) {
	w.Bool(m.OK)
	chord.EncodePeer(w, m.Self)
	m.Cert.MarshalWire(w)
	w.Bytes16(m.CAKey)
	w.U16(uint16(len(m.Roster)))
	for _, e := range m.Roster {
		w.U64(uint64(e.ID))
		w.Bytes16(e.Key)
	}
	w.U16(uint16(len(m.Endpoints)))
	for _, ep := range m.Endpoints {
		w.Bytes16([]byte(ep))
	}
	w.U16(uint16(len(m.SlotSeqs)))
	for _, s := range m.SlotSeqs {
		w.U64(s)
	}
}

// WireType implements transport.Wire.
func (RingAdmitReq) WireType() uint16 { return wireRingAdmitReq }

// EncodePayload implements transport.Wire.
func (m RingAdmitReq) EncodePayload(w *transport.Writer) {
	w.U64(uint64(m.ID))
	w.Bytes16(m.Key)
	w.Bytes16([]byte(m.Endpoint))
}

// WireType implements transport.Wire.
func (RingAdmitResp) WireType() uint16 { return wireRingAdmitResp }

// EncodePayload implements transport.Wire.
func (m RingAdmitResp) EncodePayload(w *transport.Writer) {
	w.Bool(m.OK)
	w.Addr(m.CAAddr)
	chord.EncodePeer(w, m.Bootstrap)
	transport.EncodeNested(w, m.Grant)
}

// WireType implements transport.Wire.
func (CertRetireReq) WireType() uint16 { return wireCertRetireReq }

// EncodePayload implements transport.Wire.
func (m CertRetireReq) EncodePayload(w *transport.Writer) {
	chord.EncodePeer(w, m.Who)
	w.Bytes16(m.Sig)
}

// WireType implements transport.Wire.
func (CertRetireResp) WireType() uint16 { return wireCertRetireResp }

// EncodePayload implements transport.Wire.
func (m CertRetireResp) EncodePayload(w *transport.Writer) { w.Bool(m.OK) }

// WireType implements transport.Wire.
func (RevocationAnnounce) WireType() uint16 { return wireRevocationAnnounce }

// EncodePayload implements transport.Wire.
func (m RevocationAnnounce) EncodePayload(w *transport.Writer) {
	w.U64(uint64(m.Node))
	w.Bytes16(m.Sig)
}

// WireType implements transport.Wire.
func (EndpointAnnounce) WireType() uint16 { return wireEndpointAnnounce }

// EncodePayload implements transport.Wire.
func (m EndpointAnnounce) EncodePayload(w *transport.Writer) {
	chord.EncodePeer(w, m.Who)
	w.Bytes16([]byte(m.Endpoint))
	m.Cert.MarshalWire(w)
	w.U64(m.Seq)
	w.Bytes16(m.Sig)
}

// EndpointRegistry is the optional transport capability dynamic membership
// needs on socket backends: a growable address-slot → endpoint table.
// nettransport implements it; the in-process transports (fixed slot
// tables) do not, and the membership code degrades gracefully without it.
type EndpointRegistry interface {
	// SetEndpoint installs (or extends the table to hold) the endpoint
	// of an address slot.
	SetEndpoint(addr transport.Addr, endpoint string)
	// AddEndpoint appends a fresh slot for the endpoint and returns it.
	AddEndpoint(endpoint string) transport.Addr
	// Endpoints returns a copy of the slot-indexed endpoint table.
	Endpoints() []string
}

// Attestation statement tags: the leading byte of every attested statement
// names its kind, so a signature over one statement type can never be
// replayed as another.
const (
	attestEndpoint   = 0x01
	attestRevocation = 0x02
	attestRetire     = 0x03
)

// RetireStatement is the canonical byte statement a CertRetireReq
// signature covers, signed with the retiring identity's OWN key.
func RetireStatement(who chord.Peer) []byte {
	b := &transport.Writer{}
	b.U8(attestRetire)
	chord.EncodePeer(b, who)
	return b.Bytes()
}

// attestedEndpoint is the canonical byte statement the CA's endpoint
// attestation signs: the admission ordinal, the announced identity,
// address, and endpoint. The identity certificate's signature does not
// cover the endpoint string, so without this a replayed announce could
// rebind a live slot to an attacker's endpoint; the ordinal keeps genuine
// OLD announces from rebinding a retired identity's reused slot.
func attestedEndpoint(seq uint64, who chord.Peer, endpoint string) []byte {
	b := &transport.Writer{}
	b.U8(attestEndpoint)
	b.U64(seq)
	chord.EncodePeer(b, who)
	b.Bytes16([]byte(endpoint))
	return b.Bytes()
}

// attestedRevocation is the canonical byte statement behind a
// RevocationAnnounce signature.
func attestedRevocation(node id.ID) []byte {
	b := &transport.Writer{}
	b.U8(attestRevocation)
	b.U64(uint64(node))
	return b.Bytes()
}

// handleCertIssue is the CA's online admission path: validate the request,
// bind the identity with a certificate, register it in the directory, and
// announce it to the deployment. Re-requests for an already-granted
// (identity, key) pair return the identical grant — a joiner whose
// response frame was lost must be able to retry without burning its
// identity.
func (ca *CA) handleCertIssue(from transport.Addr, m CertIssueReq) (transport.Message, bool) {
	refuse := func() (transport.Message, bool) {
		ca.stats.JoinsRefused++
		return CertIssueResp{}, true
	}
	if len(m.Key) == 0 || m.ID == 0 {
		return refuse()
	}
	// A revoked identity stays out (§4.6).
	if ca.auth.Revoked(m.ID) {
		return refuse()
	}
	if g, ok := ca.granted[m.ID]; ok {
		// One certificate per identity, ever. The identical (key,
		// address) asking again is a retry and gets the same grant;
		// anything else is an identity-takeover attempt.
		if !bytes.Equal(g.cert.Key, m.Key) || (m.Addr.Valid() && int64(m.Addr) != g.cert.Addr) {
			return refuse()
		}
		return ca.grantResp(g, m.WantRoster), true
	}
	if _, known := ca.auth.IssuedAt(m.ID); known {
		// Certified at build time (or by another path): a join request
		// for it is a takeover attempt, not a retry.
		return refuse()
	}
	if ca.AdmitPolicy != nil && !ca.AdmitPolicy(from, m) {
		return refuse()
	}
	addr := m.Addr
	if addr.Valid() {
		// Proposed addresses are an in-process-only privilege (the
		// rejoin path, which reuses the slot it calls from, on
		// transports that cannot forge `from`). On socket deployments
		// — recognizable by the presence of an allocator — the frame
		// header's `from` is writable by any TCP client, so proposals
		// are refused outright and slots come only from AllocAddr.
		if ca.AllocAddr != nil || from != addr {
			return refuse()
		}
	} else {
		if ca.AllocAddr == nil {
			return refuse()
		}
		a, ok := ca.AllocAddr(m.Endpoint)
		if !ok {
			return refuse()
		}
		addr = a
	}
	if addr == ca.addr {
		return refuse()
	}
	// Non-expiring, like every certificate in the system (§4.6):
	// certificates are independent of routing state and never re-issued.
	// (An expiry would also need a cross-process clock, which the
	// transports do not share.)
	cert, err := ca.auth.Issue(m.ID, int64(addr), m.Key, 0)
	if err != nil {
		return refuse()
	}
	who := chord.Peer{ID: m.ID, Addr: addr}
	ca.grantSeq++
	sig, err := ca.auth.Attest(attestedEndpoint(ca.grantSeq, who, m.Endpoint))
	if err != nil {
		return refuse()
	}
	ca.dir.Register(m.ID, m.Key)
	// The CA's own process never receives the broadcast (it skips
	// itself), so its replay protection advances here, at issuance.
	ca.dir.AdvanceSlotSeq(addr, ca.grantSeq)
	g := grant{cert: cert, endpoint: m.Endpoint, seq: ca.grantSeq, sig: sig, at: ca.tr.Now()}
	ca.granted[m.ID] = g
	ca.stats.JoinsAdmitted++
	if ca.Announce != nil {
		ca.Announce(g.announce())
	}
	return ca.grantResp(g, m.WantRoster), true
}

// reannounceWindow bounds how long after issuance a grant keeps being
// re-broadcast. Announces are unacknowledged one-way messages, so a
// process whose link was down when a joiner was admitted needs a second
// chance — but re-broadcasting every historical grant forever would be
// unbounded background traffic on a long-lived ring. A few minutes covers
// any realistic outage window (dial backoff, process restart); a process
// partitioned longer than this re-learns reachability only for nodes that
// matter to it through ordinary routing once the operator intervenes.
const reannounceWindow = 5 * time.Minute

// ReAnnounce re-broadcasts recently issued grants (through the Announce
// hook) and recent revocations (through AnnounceRevocation); see
// reannounceWindow. Receivers treat both idempotently. Must run in the
// CA's serialization context (octopusd schedules it with tr.Every on the
// CA's address).
func (ca *CA) ReAnnounce() {
	cutoff := ca.tr.Now() - reannounceWindow
	if ca.Announce != nil {
		for _, g := range ca.granted {
			if g.at < cutoff {
				continue
			}
			ca.Announce(g.announce())
		}
	}
	// Prune expired revocation records while sweeping: they can never be
	// broadcast again, and the slice would otherwise grow for the CA's
	// lifetime.
	kept := ca.revocations[:0]
	for _, r := range ca.revocations {
		if r.at < cutoff {
			continue
		}
		kept = append(kept, r)
		if ca.AnnounceRevocation != nil {
			ca.AnnounceRevocation(RevocationAnnounce{Node: r.node, Sig: r.sig})
		}
	}
	ca.revocations = kept
}

// propagateRevocation voids an identity everywhere: the PKI primitive, the
// local directory (join admission), and — via the broadcast + re-announce
// machinery — every other process's directory.
func (ca *CA) propagateRevocation(node id.ID) {
	ca.auth.Revoke(node)
	ca.dir.Revoke(node)
	if sig, err := ca.auth.Attest(attestedRevocation(node)); err == nil {
		ca.revocations = append(ca.revocations, revocation{node: node, sig: sig, at: ca.tr.Now()})
		if ca.AnnounceRevocation != nil {
			ca.AnnounceRevocation(RevocationAnnounce{Node: node, Sig: sig})
		}
	}
}

// handleRetire releases a departing joiner's admission state. Authority is
// the identity's own key: frame-header origins can be forged by any TCP
// client, signatures cannot. Only online grants are retirable.
//
// Retirement is TERMINAL: the identity is revoked, not merely forgotten.
// Its slot becomes reusable, and a still-valid certificate binding a
// recycled slot must never re-enter through JoinReq — two identities would
// alias one slot with misrouted traffic. A returning operator simply mints
// a fresh identity (the daemon's default on every start).
func (ca *CA) handleRetire(_ transport.Addr, m CertRetireReq) (transport.Message, bool) {
	g, ok := ca.granted[m.Who.ID]
	if !ok || int64(m.Who.Addr) != g.cert.Addr ||
		!ca.dir.Scheme().Verify(g.cert.Key, RetireStatement(m.Who), m.Sig) {
		return CertRetireResp{}, true
	}
	delete(ca.granted, m.Who.ID)
	ca.propagateRevocation(m.Who.ID)
	if ca.OnRetire != nil {
		ca.OnRetire(g.endpoint, m.Who.Addr)
	}
	return CertRetireResp{OK: true}, true
}

// handleRevocation processes a CA revocation broadcast on a node: verify
// the attestation, then mirror the revocation into the local directory so
// join admission refuses the revoked identity in THIS process too.
func (n *Node) handleRevocation(m RevocationAnnounce) {
	caKey := n.dir.CAKey()
	if len(caKey) == 0 ||
		!n.dir.Scheme().Verify(caKey, attestedRevocation(m.Node), m.Sig) {
		return
	}
	n.stats.revocations.Add(1)
	n.dir.Revoke(m.Node)
	// The evicted identity may be a cached owner or live in cached
	// successor-list evidence.
	n.flushLookupCache()
	if n.onehop != nil {
		n.onehop.noteLeave(m.Node)
	}
}

// grantResp assembles the admission response for a (possibly re-issued)
// grant.
func (ca *CA) grantResp(g grant, wantRoster bool) CertIssueResp {
	resp := CertIssueResp{
		OK:    true,
		Self:  chord.Peer{ID: g.cert.Node, Addr: transport.Addr(g.cert.Addr)},
		Cert:  g.cert,
		CAKey: ca.auth.PublicKey(),
	}
	if wantRoster {
		resp.Roster = ca.dir.Snapshot()
		if reg, ok := ca.tr.(EndpointRegistry); ok {
			resp.Endpoints = reg.Endpoints()
			// Per-slot admission ordinals seed the joiner's replay
			// protection (a fresh process has no announce history).
			// The directory — not ca.granted — is the source, so
			// RETIRED occupants' ordinals are included too.
			resp.SlotSeqs = make([]uint64, len(resp.Endpoints))
			for slot := range resp.SlotSeqs {
				resp.SlotSeqs[slot] = ca.dir.SlotSeq(transport.Addr(slot))
			}
		}
	}
	return resp
}

// admitJoin is the node-side admission check installed as the chord layer's
// AdmitJoin hook: the joiner's certificate must verify against the CA key
// and bind exactly the identity that is asking to join. On success the
// joiner's public key enters the local directory, so its signed tables
// verify from the first stabilization round.
func (n *Node) admitJoin(m chord.JoinReq) bool {
	if !n.vetJoin(m) {
		n.stats.joinsRejected.Add(1)
		return false
	}
	n.stats.joinsAdmitted.Add(1)
	n.dir.Register(m.Cert.Node, m.Cert.Key)
	// The admitting predecessor is the first to learn a join that has no
	// CA broadcast behind it (simulated churn): feed it into the one-hop
	// tier so EDRA spreads it.
	if n.onehop != nil {
		n.onehop.noteJoin(m.Who)
	}
	return true
}

// vetJoin holds admitJoin's checks; admitJoin wraps it with the membership
// event counters and the directory registration.
func (n *Node) vetJoin(m chord.JoinReq) bool {
	c := m.Cert
	if c.Node != m.Who.ID || c.Addr != int64(m.Who.Addr) {
		return false
	}
	// Certificates never expire (§4.6), so revocation must bite HERE:
	// a revoked node's certificate still verifies, and without this
	// check it could simply re-join the ring.
	if n.dir.Revoked(c.Node) {
		return false
	}
	if !n.dir.VerifyCert(c) {
		return false
	}
	if c.Expiry != 0 && n.tr.Now() > c.Expiry {
		return false
	}
	return true
}

// vetLeave is the node-side leave check installed as the chord layer's
// VetLeave hook: a departure notice must be signed by the departing
// identity's own key. Without it, any TCP client could forge
// LeaveReq{Who: victim} to the victim's neighbors — an eviction primitive.
func (n *Node) vetLeave(m chord.LeaveReq) bool {
	key, ok := n.dir.Key(m.Who.ID)
	if !ok {
		return false
	}
	if !n.dir.Scheme().Verify(key, chord.LeaveStatement(m.Who), m.Sig) {
		return false
	}
	n.stats.leaves.Add(1)
	// A verified leave is a one-hop membership event too.
	if n.onehop != nil {
		n.onehop.noteLeave(m.Who.ID)
	}
	return true
}

// handleAnnounce processes an EndpointAnnounce: verify the certificate AND
// the CA's endpoint attestation, register the joiner's key, and teach the
// transport the new slot's endpoint when the backend supports dynamic
// tables. Both signatures are required — the certificate authenticates the
// identity binding, the attestation authenticates the endpoint the
// certificate does not cover.
func (n *Node) handleAnnounce(m EndpointAnnounce) {
	c := m.Cert
	if c.Node != m.Who.ID || c.Addr != int64(m.Who.Addr) || !n.dir.VerifyCert(c) {
		return
	}
	caKey := n.dir.CAKey()
	if len(caKey) == 0 ||
		!n.dir.Scheme().Verify(caKey, attestedEndpoint(m.Seq, m.Who, m.Endpoint), m.Sig) {
		return
	}
	// Ordinal check LAST: only a fully verified announce may advance the
	// slot's sequence. A replayed announce for the slot's previous
	// occupant carries a lower ordinal and is ignored.
	if !n.dir.AdvanceSlotSeq(m.Who.Addr, m.Seq) {
		return
	}
	n.dir.Register(c.Node, c.Key)
	if m.Endpoint != "" {
		if reg, ok := n.tr.(EndpointRegistry); ok {
			reg.SetEndpoint(m.Who.Addr, m.Endpoint)
		}
	}
	n.stats.announces.Add(1)
	// A verified announce means membership shifted: a joiner may now own
	// keys that cached lookups still attribute to its successor.
	n.flushLookupCache()
	if n.onehop != nil {
		n.onehop.noteJoin(m.Who)
	}
}

// NewAdmissionRelay returns the bootstrap-request handler an octopusd
// process installs (nettransport.SetBootstrapHandler): it relays a
// slotless joiner's RingAdmitReq to the CA over the ring transport —
// calling from `caller`, a slot this process serves — and packages the
// grant with the CA's address and a live bootstrap peer. The handler runs
// on a connection read goroutine and blocks for at most timeout.
func NewAdmissionRelay(tr transport.Transport, caller, caAddr transport.Addr,
	bootstrap chord.Peer, timeout time.Duration) func(string, transport.Message) (transport.Message, bool) {
	return func(_ string, req transport.Message) (transport.Message, bool) {
		m, ok := req.(RingAdmitReq)
		if !ok {
			return nil, false
		}
		issue := CertIssueReq{
			ID:         m.ID,
			Addr:       transport.NoAddr, // the CA allocates the slot
			Key:        m.Key,
			Endpoint:   m.Endpoint,
			WantRoster: true,
		}
		type outcome struct {
			grant CertIssueResp
			err   error
		}
		ch := make(chan outcome, 1)
		tr.Call(caller, caAddr, issue, timeout, func(resp transport.Message, err error) {
			r, _ := resp.(CertIssueResp)
			ch <- outcome{grant: r, err: err}
		})
		// NewTimer + Stop, not time.After: the handler runs once per
		// admission attempt, and an unstopped timer would outlive every
		// fast CA round trip by 1.5 timeouts.
		deadline := time.NewTimer(timeout + timeout/2)
		defer deadline.Stop()
		select {
		case out := <-ch:
			if out.err != nil {
				// Transient: the CA was unreachable from the relay.
				// Stay silent so the joiner observes a bootstrap
				// timeout and RETRIES — a RingAdmitResp{OK:false}
				// means a real refusal and stops the retry loop.
				return nil, false
			}
			if !out.grant.OK {
				return RingAdmitResp{}, true
			}
			return RingAdmitResp{OK: true, Grant: out.grant, CAAddr: caAddr, Bootstrap: bootstrap}, true
		case <-deadline.C:
			return nil, false
		}
	}
}

// Leave departs the ring gracefully: the Octopus timers stop first (no new
// walks or surveillance probes), then the chord layer runs the LeaveReq
// handshake with both neighbors and shuts the node down. done reports
// whether the neighbors acknowledged.
func (n *Node) Leave(done func(error)) {
	for _, stop := range n.stops {
		stop()
	}
	n.stops = nil
	n.flushLookupCache()
	n.Chord.Leave(done)
}

// Rejoin replaces the node at an address slot with a fresh identity
// admitted ONLINE: the replacement mints a key pair, obtains its
// certificate from the CA over the wire (CertIssueReq), and enters the ring
// through the JoinReq handshake via the given bootstrap — the same code
// path an `octopusd -join` process takes, which is what makes simulated
// churn and real churn exercise identical logic. onJoined fires exactly
// once with the running node or the failure.
func (nw *Network) Rejoin(addr transport.Addr, bootstrap chord.Peer, cfg Config,
	onJoined func(*Node, error)) {
	rng := nw.Net.Rand()
	kp, err := nw.Dir.Scheme().GenerateKey(rng)
	if err != nil {
		onJoined(nil, err)
		return
	}
	self := chord.Peer{ID: id.ID(rng.Uint64()), Addr: addr}

	chordCfg := cfg.Chord
	chordCfg.SignTables = true
	chordCfg.DisableFingerUpdates = true
	cn := chord.NewNode(nw.Net, chordCfg, self, nil)
	node := New(cn, cfg, nw.CA.Addr(), nw.Dir)
	cn.Start()

	fail := func(err error) {
		cn.Stop()
		onJoined(nil, err)
	}
	req := CertIssueReq{ID: self.ID, Addr: addr, Key: kp.Public}
	nw.Net.Call(addr, nw.CA.Addr(), req, cfg.Chord.RPCTimeout,
		func(resp transport.Message, err error) {
			if err != nil {
				fail(err)
				return
			}
			r, ok := resp.(CertIssueResp)
			if !ok || !r.OK {
				fail(ErrAdmissionRefused)
				return
			}
			cn.SetIdentity(&chord.Identity{
				Scheme: nw.Dir.Scheme(),
				Key:    kp,
				Cert:   r.Cert,
			})
			cn.Join(bootstrap, func(err error) {
				if err != nil {
					fail(err)
					return
				}
				node.StartProtocols()
				nw.Ring.Replace(addr, cn)
				if int(addr) < len(nw.Nodes) {
					nw.Nodes[addr] = node
				}
				onJoined(node, nil)
			})
		})
}
