package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/octopus-dht/octopus/internal/chord"
	"github.com/octopus-dht/octopus/internal/id"
	"github.com/octopus-dht/octopus/internal/obs"
)

// Backpressure errors returned through ServiceResult.Err.
var (
	// ErrServiceBusy means the service's global queue is full: the caller
	// should back off and retry (over the wire this surfaces as a
	// ClientLookupResp with Busy set).
	ErrServiceBusy = errors.New("core: lookup service saturated, retry later")
	// ErrClientBusy means one client exceeded its per-client quota of
	// queued plus running lookups.
	ErrClientBusy = errors.New("core: per-client lookup quota exhausted")
	// ErrServiceClosed is reported for work still queued when the service
	// shuts down.
	ErrServiceClosed = errors.New("core: lookup service closed")
)

// ServiceConfig bounds a LookupService.
type ServiceConfig struct {
	// Workers is the maximum number of anonymous lookups the service
	// keeps in flight at once (each one is α-parallel internally per
	// Config.LookupParallelism). Zero means 8.
	Workers int
	// Queue is the number of submissions that may wait beyond Workers
	// before the service answers ErrServiceBusy. Zero means 64.
	Queue int
	// PerClient caps one client's queued-plus-running lookups, so a
	// single aggressive client cannot occupy the whole queue. Zero means
	// 16.
	PerClient int
}

func (c *ServiceConfig) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.PerClient <= 0 {
		c.PerClient = 16
	}
}

// ServiceResult is the outcome of one served lookup.
type ServiceResult struct {
	Owner chord.Peer
	// Stats is the underlying lookup's per-query accounting.
	Stats LookupStats
	// Wait is how long the submission sat in the queue before a worker
	// slot picked it up.
	Wait time.Duration
	Err  error
}

// svcJob is one queued lookup.
type svcJob struct {
	id       uint64
	client   string
	key      id.ID
	cb       func(ServiceResult)
	enqueued time.Duration
}

// LookupService serves anonymous lookups on behalf of external clients
// through a bounded worker pool with per-client fairness and explicit
// backpressure. octopusd exposes it over the 0x05xx client wire registry;
// the load experiment drives it directly.
//
// All mutable state lives in the node's serialization context: Enqueue may
// be called from any goroutine, but submission, scheduling, and completion
// all run on the node's actor, so the service adds no locking to the
// lookup hot path.
type LookupService struct {
	n   *Node
	cfg ServiceConfig

	// Host-context state.
	queue     []svcJob
	perClient map[string]int
	active    int
	closed    bool
	nextJob   uint64

	// Cross-goroutine observability.
	submitted      atomic.Uint64
	completed      atomic.Uint64
	failed         atomic.Uint64
	rejectedQueue  atomic.Uint64
	rejectedClient atomic.Uint64
	activeGauge    atomic.Int64
	queuedGauge    atomic.Int64

	// obsWait is the queue-wait histogram AttachObs registers; nil-safe
	// at the observation site.
	obsWait *obs.Histogram
}

// NewLookupService builds a service over one node. The node should be
// running with a managed relay-pair pool (Config.PairPoolTarget > 0) so
// served lookups draw pre-built pairs instead of falling back to
// finger-synthesized ones under load.
func NewLookupService(n *Node, cfg ServiceConfig) *LookupService {
	cfg.fillDefaults()
	return &LookupService{
		n:         n,
		cfg:       cfg,
		perClient: make(map[string]int),
	}
}

// Node returns the serving node.
func (s *LookupService) Node() *Node { return s.n }

// Stats snapshots the service counters; safe from any goroutine.
func (s *LookupService) Stats() obs.ServiceCounters {
	return obs.ServiceCounters{
		Submitted:      s.submitted.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		RejectedQueue:  s.rejectedQueue.Load(),
		RejectedClient: s.rejectedClient.Load(),
		Active:         int(s.activeGauge.Load()),
		Queued:         int(s.queuedGauge.Load()),
	}
}

// AttachObs registers the service's counters, gauges, and queue-wait
// histogram with the collector.
func (s *LookupService) AttachObs(c *obs.Collector) {
	if s.obsWait == nil {
		s.obsWait = obs.NewHistogram(
			"octopus_service_wait_seconds", obs.LatencyBuckets, s.n.nodeLabel())
	}
	c.Register(s.obsWait)
	c.Register(s)
}

// CollectObs implements obs.Source.
func (s *LookupService) CollectObs(snap *obs.Snapshot) {
	st := s.Stats()
	l := s.n.nodeLabel()
	snap.AddCounter("octopus_service_lookups_submitted_total", float64(st.Submitted), l)
	snap.AddCounter("octopus_service_lookups_completed_total", float64(st.Completed), l)
	snap.AddCounter("octopus_service_lookups_failed_total", float64(st.Failed), l)
	snap.AddCounter("octopus_service_rejected_total", float64(st.RejectedQueue), l, obs.L("reason", "queue"))
	snap.AddCounter("octopus_service_rejected_total", float64(st.RejectedClient), l, obs.L("reason", "client"))
	snap.AddGauge("octopus_service_active_lookups", float64(st.Active), l)
	snap.AddGauge("octopus_service_queued_lookups", float64(st.Queued), l)
}

// Enqueue submits one lookup on behalf of client. It may be called from
// any goroutine; cb is invoked exactly once, from the node's serialization
// context (hand results to other goroutines through a channel). Rejections
// (ErrServiceBusy, ErrClientBusy) are also delivered through cb.
func (s *LookupService) Enqueue(client string, key id.ID, cb func(ServiceResult)) {
	s.EnqueueCancellable(client, key, cb)
}

// EnqueueCancellable is Enqueue returning a cancel function for callers
// that stop waiting (a serve deadline). Cancellation is best-effort and
// may be called from any goroutine: a job still WAITING in the queue is
// removed and its per-client quota released, without invoking cb — so an
// abandoned client's retries do not stack zombie queue entries against
// its own quota. A job already running cannot be interrupted (the lookup
// is live continuation state across the ring); it completes, invokes cb,
// and only then releases its quota.
func (s *LookupService) EnqueueCancellable(client string, key id.ID, cb func(ServiceResult)) (cancel func()) {
	jobID := make(chan uint64, 1)
	s.n.tr.After(s.n.Chord.Self.Addr, 0, func() { jobID <- s.submit(client, key, cb) })
	var once sync.Once
	return func() {
		once.Do(func() { s.cancelQueued(jobID) })
	}
}

// cancelQueued removes one queued job (identified by the id the submit
// closure published) from inside the host context.
func (s *LookupService) cancelQueued(jobID <-chan uint64) {
	s.n.tr.After(s.n.Chord.Self.Addr, 0, func() {
		// The submit closure always ran before this one (same
		// serialization context, FIFO), so the id is ready.
		var id uint64
		select {
		case id = <-jobID:
		default:
		}
		if id == 0 {
			return // rejected, or started immediately: nothing queued
		}
		for i, job := range s.queue {
			if job.id != id {
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.queuedGauge.Store(int64(len(s.queue)))
			s.perClient[job.client]--
			if s.perClient[job.client] <= 0 {
				delete(s.perClient, job.client)
			}
			return
		}
	})
}

// Close rejects all queued work with ErrServiceClosed and refuses new
// submissions. In-flight lookups run to completion. Like Enqueue it may be
// called from any goroutine.
func (s *LookupService) Close() {
	s.n.tr.After(s.n.Chord.Self.Addr, 0, func() {
		s.closed = true
		queued := s.queue
		s.queue = nil
		s.queuedGauge.Store(0)
		for _, job := range queued {
			s.perClient[job.client]--
			if s.perClient[job.client] <= 0 {
				delete(s.perClient, job.client)
			}
			job.cb(ServiceResult{Err: ErrServiceClosed})
		}
	})
}

// submit runs in host context. It returns the job's id when the job was
// QUEUED (the handle cancelQueued removes it by), and 0 when it was
// rejected or started immediately.
func (s *LookupService) submit(client string, key id.ID, cb func(ServiceResult)) uint64 {
	s.submitted.Add(1)
	if s.closed {
		cb(ServiceResult{Err: ErrServiceClosed})
		return 0
	}
	if s.perClient[client] >= s.cfg.PerClient {
		s.rejectedClient.Add(1)
		cb(ServiceResult{Err: ErrClientBusy})
		return 0
	}
	if s.active >= s.cfg.Workers && len(s.queue) >= s.cfg.Queue {
		s.rejectedQueue.Add(1)
		cb(ServiceResult{Err: ErrServiceBusy})
		return 0
	}
	s.perClient[client]++
	s.nextJob++
	job := svcJob{id: s.nextJob, client: client, key: key, cb: cb, enqueued: s.n.tr.Now()}
	if s.active < s.cfg.Workers {
		s.start(job)
		return 0
	}
	s.queue = append(s.queue, job)
	s.queuedGauge.Store(int64(len(s.queue)))
	return job.id
}

// start runs in host context with a free worker slot.
func (s *LookupService) start(job svcJob) {
	s.active++
	s.activeGauge.Store(int64(s.active))
	wait := s.n.tr.Now() - job.enqueued
	s.obsWait.ObserveDuration(wait)
	s.n.AnonLookup(job.key, func(owner chord.Peer, stats LookupStats, err error) {
		s.active--
		s.activeGauge.Store(int64(s.active))
		s.perClient[job.client]--
		if s.perClient[job.client] <= 0 {
			delete(s.perClient, job.client)
		}
		if err != nil {
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		job.cb(ServiceResult{Owner: owner, Stats: stats, Wait: wait, Err: err})
		s.pump()
	})
}

// pump starts queued jobs while worker slots are free (host context).
func (s *LookupService) pump() {
	for !s.closed && s.active < s.cfg.Workers && len(s.queue) > 0 {
		job := s.queue[0]
		s.queue = s.queue[1:]
		s.queuedGauge.Store(int64(len(s.queue)))
		s.start(job)
	}
}
