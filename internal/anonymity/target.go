package anonymity

import (
	"math"
)

// Target anonymity H(T) per the paper's Appendix III (Eqs. 8–21). The
// precondition for compromising target anonymity is observing the
// initiator; given that, the adversary mounts the range-estimation attack
// on whatever queries it can attribute to I, with dummy queries forcing it
// to hedge across every consistent subset of its observations.

// obsQuery is one observed query position with its provenance.
type obsQuery struct {
	pos     int
	dummy   bool
	bLinked bool
	iLinked bool
}

// HTarget computes H(T) by Monte Carlo over sampled observations.
func (a *Analyzer) HTarget() float64 {
	cfg := a.cfg
	rng := a.rng
	idealFull := math.Log2(float64(cfg.N))
	concurrent := int(cfg.Alpha * float64(cfg.N))
	if concurrent < 1 {
		concurrent = 1
	}

	// Pre-estimate the probability that a random concurrent lookup has at
	// least one observed query linkable to a shared B relay (used by the
	// Eq. 15–17 case).
	pBLink := a.estimatePBLink(500)

	var sum float64
	for t := 0; t < cfg.Trials; t++ {
		init := rng.Intn(a.ring.N())
		target := rng.Intn(a.ring.N())
		key := a.ring.ID(target)
		path := a.ring.LookupPath(init, key)
		link := a.sampleQueryLinkability(len(path))

		if !link.iObserved {
			sum += idealFull // Eq. 8's o_n term
			continue
		}

		switch cfg.Scheme {
		case SchemeNISAN:
			sum += a.nisanTarget(path, link, idealFull)
			continue
		case SchemeTorsk:
			sum += a.torskTarget(link, idealFull, concurrent)
			continue
		case SchemeChord:
			// iObserved means the first hop was malicious; the key —
			// and hence the target — is in the clear.
			sum += 0
			continue
		}

		// --- Octopus ---
		obs := a.assembleObservations(path, link)
		hm := a.hm(concurrent)

		var linked []obsQuery
		realLinked := 0
		for _, q := range obs {
			if q.iLinked {
				linked = append(linked, q)
				if !q.dummy {
					realLinked++
				}
			}
		}
		switch {
		case len(linked) > 0 && realLinked > 0:
			// Eq. 9–13: range estimation hedged over consistent
			// subsets.
			sum += a.subsetEntropy(linked, idealFull)
		case len(linked) > 0:
			// Every linkable query is a dummy (Eq. 9's first term).
			sum += hm
		default:
			// Eq. 14: no linkable query at all.
			var bObserved, anyObserved []obsQuery
			for _, q := range obs {
				if q.bLinked {
					bObserved = append(bObserved, q)
				}
				anyObserved = append(anyObserved, q)
			}
			switch {
			case len(anyObserved) == 0:
				sum += hm // case 1
			case len(bObserved) > 0:
				// case 2 (Eqs. 15–17): the adversary groups queries
				// by shared B and hedges uniformly across the
				// concurrent lookups with B-linkable queries.
				realB := 0
				for _, q := range bObserved {
					if !q.dummy {
						realB++
					}
				}
				if realB == 0 {
					sum += hm
					break
				}
				others := binomial(rng, concurrent-1, pBLink)
				own := a.subsetEntropy(bObserved, idealFull)
				h := math.Log2(float64(1+others)) + own
				if h > idealFull {
					h = idealFull
				}
				sum += cfg.F*math.Log2(math.Max(1, float64(binomial(rng, concurrent, cfg.F)))) +
					(1-cfg.F)*h
			default:
				// case 3 (Eqs. 18–21): isolated observations; each
				// query yields a near-ring-wide range, hedged over
				// every observed query of every concurrent lookup.
				perLookup := a.expectedObservedPerLookup()
				total := float64(len(anyObserved)) + float64(concurrent-1)*perLookup
				h := math.Log2(math.Max(1, total)) + a.gamma.rangeEntropy(a.ring.N()-1)
				if h > idealFull {
					h = idealFull
				}
				sum += cfg.F*math.Log2(math.Max(1, float64(binomial(rng, concurrent, cfg.F)))) +
					(1-cfg.F)*h
			}
		}
	}
	return sum / float64(cfg.Trials)
}

// hm is Eq. (10): the entropy when the linkable observations carry no
// positional information — the target is either an unknown honest node or
// one of the observed malicious targets.
func (a *Analyzer) hm(concurrent int) float64 {
	f := a.cfg.F
	malTargets := binomial(a.rng, concurrent, f)
	return (1-f)*math.Log2(float64(a.cfg.N)*(1-f)) +
		f*math.Log2(math.Max(1, float64(malTargets)))
}

// assembleObservations interleaves the lookup's real queries with dummy
// queries at uniform positions (the dummy targets mimic the global query
// distribution) in a plausible observation-time order.
func (a *Analyzer) assembleObservations(path []int, link queryLink) []obsQuery {
	rng := a.rng
	var out []obsQuery
	for i, p := range path {
		if !link.observed[i] {
			continue
		}
		out = append(out, obsQuery{
			pos:     p,
			bLinked: i < len(link.bLinked) && link.bLinked[i],
			iLinked: link.linkable[i],
		})
	}
	for d := 0; d < a.cfg.Dummies; d++ {
		f := a.cfg.F
		cMal := rng.Float64() < f
		dMal := rng.Float64() < f
		eMal := rng.Float64() < f
		if !(dMal || eMal) {
			continue // dummy unobserved
		}
		q := obsQuery{
			pos:     rng.Intn(a.ring.N()),
			dummy:   true,
			bLinked: cMal,
			iLinked: (link.aMal && cMal),
		}
		// Insert at a random point of the observation order.
		at := 0
		if len(out) > 0 {
			at = rng.Intn(len(out) + 1)
		}
		out = append(out, obsQuery{})
		copy(out[at+1:], out[at:])
		out[at] = q
	}
	return out
}

// subsetEntropy hedges the range-estimation attack over every consistent
// subset of the linkable observations (Eqs. 11–13): each subset s gets
// weight χ(|s|, largest hop) and contributes an estimation range whose
// internal entropy comes from γ. Ranges from distinct subsets rarely
// overlap, so the mixture entropy decomposes into the weight entropy plus
// the expected within-range entropy.
func (a *Analyzer) subsetEntropy(linked []obsQuery, ideal float64) float64 {
	positions := make([]int, len(linked))
	for i, q := range linked {
		positions[i] = q.pos
	}
	n := len(positions)
	var weights []float64
	var ranges []float64
	consider := func(mask int) {
		sub := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, positions[i])
			}
		}
		if len(sub) == 0 || !a.ring.SubsetConsistent(sub) {
			return
		}
		w := a.chi.at(len(sub), a.ring.LargestHop(sub))
		_, size := a.ring.EstimateRange(sub)
		weights = append(weights, w)
		ranges = append(ranges, a.gamma.rangeEntropy(size))
	}
	if n <= 12 {
		for mask := 1; mask < 1<<uint(n); mask++ {
			consider(mask)
		}
	} else {
		for s := 0; s < 4096; s++ {
			consider(1 + a.rng.Intn(1<<uint(n)-1))
		}
	}
	if len(weights) == 0 {
		return ideal
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	var h float64
	for i, w := range weights {
		p := w / wsum
		if p > 0 {
			h += -p*math.Log2(p) + p*ranges[i]
		}
	}
	if h > ideal {
		h = ideal
	}
	return h
}

// estimatePBLink estimates the probability that a random lookup has at
// least one observed B-linkable query.
func (a *Analyzer) estimatePBLink(samples int) float64 {
	hits := 0
	for s := 0; s < samples; s++ {
		link := a.sampleQueryLinkability(a.sampleHopCount())
		for i := range link.observed {
			if link.observed[i] && i < len(link.bLinked) && link.bLinked[i] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(samples)
}

// expectedObservedPerLookup estimates E[# observed queries] of one lookup.
func (a *Analyzer) expectedObservedPerLookup() float64 {
	total := 0
	const samples = 300
	for s := 0; s < samples; s++ {
		link := a.sampleQueryLinkability(a.sampleHopCount())
		for _, o := range link.observed {
			if o {
				total++
			}
		}
	}
	return float64(total) / samples
}

// nisanTarget: every observed query is attributable to I (source address),
// so the adversary range-estimates directly from the observed real queries
// — the paper's §2 range-estimation vulnerability that costs NISAN 11.3
// bits.
func (a *Analyzer) nisanTarget(path []int, link queryLink, ideal float64) float64 {
	var observed []int
	for i, p := range path {
		if link.observed[i] {
			observed = append(observed, p)
		}
	}
	if len(observed) == 0 {
		return ideal
	}
	_, size := a.ring.EstimateRange(observed)
	h := a.gamma.rangeEntropy(size)
	if h > ideal {
		h = ideal
	}
	return h
}

// torskTarget: a malicious buddy learns the key outright; otherwise the
// initiator's exposure (walk hops) does not reveal which lookup was its
// own, leaving near-full uncertainty.
func (a *Analyzer) torskTarget(link queryLink, ideal float64, concurrent int) float64 {
	if link.buddyMal {
		return 0
	}
	return a.hm(concurrent)
}
