package anonymity

import (
	"math"
	"math/rand"
)

// Scheme selects which lookup protocol's observation model to analyze.
type Scheme int

// Analyzable schemes.
const (
	SchemeOctopus Scheme = iota + 1
	SchemeNISAN
	SchemeTorsk
	SchemeChord
)

func (s Scheme) String() string {
	switch s {
	case SchemeOctopus:
		return "Octopus"
	case SchemeNISAN:
		return "NISAN"
	case SchemeTorsk:
		return "Torsk"
	case SchemeChord:
		return "Chord"
	}
	return "unknown"
}

// Config parameterizes an anonymity analysis (§6's setting: N = 100 000,
// f up to 20 %, α = 0.5–1 %, 2 or 6 dummies).
type Config struct {
	N          int
	F          float64 // malicious fraction
	Alpha      float64 // concurrent lookup rate
	Dummies    int
	WalkLength int // l, phase length of the relay-selection walk
	SuccList   int
	Scheme     Scheme
	Trials     int
	PreSimRuns int
	Seed       int64
}

// DefaultConfig mirrors the paper's §6 setting.
func DefaultConfig() Config {
	return Config{
		N:          100_000,
		F:          0.20,
		Alpha:      0.01,
		Dummies:    6,
		WalkLength: 3,
		SuccList:   6,
		Scheme:     SchemeOctopus,
		Trials:     400,
		PreSimRuns: 4000,
		Seed:       1,
	}
}

// Result carries the computed entropies in bits.
type Result struct {
	HInitiator     float64
	HTarget        float64
	IdealInitiator float64 // log2((1-f)·N): honest-node anonymity ceiling
	IdealTarget    float64 // log2(N)
	LeakInitiator  float64
	LeakTarget     float64
}

// Analyzer computes H(I) and H(T) for one configuration.
type Analyzer struct {
	cfg   Config
	ring  *Ring
	rng   *rand.Rand
	xi    *distXi
	gamma *distGamma
	chi   *distChi
	hops  []float64 // hop-count distribution of the lookup model
}

// New builds the ring model and runs the pre-simulations.
func New(cfg Config) *Analyzer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Analyzer{cfg: cfg, rng: rng, ring: NewRing(cfg.N, cfg.SuccList, rng)}
	link := func(q int) []bool { return a.sampleQueryLinkability(q).linkable }
	a.xi, a.gamma, a.chi, a.hops = preSim(a.ring, rng, cfg.PreSimRuns, nil, link)
	return a
}

// queryLink is the adversary's per-lookup observation sample.
type queryLink struct {
	observed []bool
	linkable []bool
	// bLinked marks queries whose Ci relay is malicious and therefore
	// linkable to the lookup's shared relay B (Octopus only).
	bLinked []bool
	// aMal / buddyMal expose lookup-level relays.
	aMal     bool
	buddyMal bool
	// iObserved: the initiator's identity was seen somewhere (first
	// anonymization relay, a walk's first hop, or — for the direct
	// schemes — any queried node).
	iObserved bool
}

func (l queryLink) anyLinkable() bool {
	for _, b := range l.linkable {
		if b {
			return true
		}
	}
	return false
}

// sampleQueryLinkability draws which of a lookup's q queries are observed
// and linkable to the initiator under the scheme's observation process
// (§6.1).
func (a *Analyzer) sampleQueryLinkability(q int) queryLink {
	f := a.cfg.F
	rng := a.rng
	out := queryLink{observed: make([]bool, q), linkable: make([]bool, q)}
	switch a.cfg.Scheme {
	case SchemeOctopus:
		// One (A, B) pair per lookup; fresh (Ci, Di) per query; queries
		// linkable via compromised-relay bridging (A∧Ci), via a traced
		// relay-selection walk, and via B-closure (§6.1).
		out.aMal = rng.Float64() < f
		pWalkTrace := math.Pow(f, float64(2*a.cfg.WalkLength-1))
		pWalkObs := 1 - (1-f)*(1-f)
		out.bLinked = make([]bool, q)
		for i := 0; i < q; i++ {
			cMal := rng.Float64() < f
			dMal := rng.Float64() < f
			eMal := rng.Float64() < f
			out.observed[i] = dMal || eMal
			out.bLinked[i] = cMal
			walkTraced := rng.Float64() < pWalkTrace
			out.linkable[i] = out.observed[i] && ((out.aMal && cMal) || walkTraced)
		}
		if out.anyLinkable() {
			// Queries linkable to the shared relay B inherit the link
			// to I once any one query bridges both.
			for i := 0; i < q; i++ {
				if out.bLinked[i] && out.observed[i] {
					out.linkable[i] = true
				}
			}
		}
		out.iObserved = out.aMal || rng.Float64() < pWalkObs
	case SchemeNISAN:
		// The initiator contacts every queried node directly, and
		// NISAN's greedy search queries several nodes per step (§2),
		// so each step is observed unless ALL its redundant queried
		// nodes are honest. A malicious queried node observes the
		// query AND its initiator.
		const redundancy = 3
		pObs := 1 - math.Pow(1-f, redundancy)
		for i := 0; i < q; i++ {
			obs := rng.Float64() < pObs
			out.observed[i] = obs
			out.linkable[i] = obs
			if obs {
				out.iObserved = true
			}
		}
	case SchemeTorsk:
		// The buddy contacts queried nodes; the initiator contacts only
		// the buddy. A malicious buddy sees the initiator and the key.
		out.buddyMal = rng.Float64() < f
		for i := 0; i < q; i++ {
			eMal := rng.Float64() < f
			out.observed[i] = eMal
			out.linkable[i] = eMal && out.buddyMal
		}
		out.iObserved = out.buddyMal || rng.Float64() < f // buddy or walk hop
	case SchemeChord:
		// Recursive Chord: hop j sees hop j-1 and the key. Observation
		// = malicious hop; linkable to I only from the first hop.
		for i := 0; i < q; i++ {
			mal := rng.Float64() < f
			out.observed[i] = mal
			out.linkable[i] = mal && i == 0
			if mal && i == 0 {
				out.iObserved = true
			}
		}
	}
	return out
}

// sampleHopCount draws a lookup length from the pre-simulated distribution.
func (a *Analyzer) sampleHopCount() int {
	u := a.rng.Float64()
	acc := 0.0
	for h, p := range a.hops {
		acc += p
		if u <= acc {
			return h
		}
	}
	return len(a.hops) - 1
}

func entropyOfWeights(ws []float64) float64 {
	var sum float64
	for _, w := range ws {
		sum += w
	}
	if sum <= 0 {
		return 0
	}
	var h float64
	for _, w := range ws {
		if w > 0 {
			p := w / sum
			h += -p * math.Log2(p)
		}
	}
	return h
}

// binomial draws Binomial(n, p) (normal approximation for large n).
func binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 64 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(mean + sd*rng.NormFloat64() + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Analyze computes both entropies.
func (a *Analyzer) Analyze() Result {
	res := Result{
		IdealInitiator: math.Log2(float64(a.cfg.N) * (1 - a.cfg.F)),
		IdealTarget:    math.Log2(float64(a.cfg.N)),
	}
	res.HInitiator = a.HInitiator()
	res.HTarget = a.HTarget()
	res.LeakInitiator = res.IdealInitiator - res.HInitiator
	res.LeakTarget = res.IdealTarget - res.HTarget
	return res
}

// HInitiator computes H(I) per Eqs. (2)–(7): average over sampled
// observations of the initiator entropy, conditioned on whether the target
// is observed and whether any query of the target's lookup is linkable.
func (a *Analyzer) HInitiator() float64 {
	cfg := a.cfg
	rng := a.rng
	idealHon := math.Log2(float64(cfg.N) * (1 - cfg.F))
	concurrent := int(cfg.Alpha * float64(cfg.N))
	if concurrent < 1 {
		concurrent = 1
	}

	var sum float64
	for t := 0; t < cfg.Trials; t++ {
		// Simulate the target's own lookup first: some schemes' "target
		// observed" events depend on the same lookup's relays.
		init := rng.Intn(a.ring.N())
		target := rng.Intn(a.ring.N())
		key := a.ring.ID(target)
		path := a.ring.LookupPath(init, key)
		link := a.sampleQueryLinkability(len(path))

		// The target is observed when it is itself malicious (§6.1: the
		// key is never revealed in Octopus/NISAN). Torsk reveals the key
		// to the buddy; recursive Chord reveals it to every queried hop.
		tObserved := rng.Float64() < cfg.F
		if cfg.Scheme == SchemeTorsk {
			tObserved = tObserved || link.buddyMal
		}
		if cfg.Scheme == SchemeChord {
			for _, o := range link.observed {
				if o {
					tObserved = true
					break
				}
			}
		}
		if !tObserved {
			sum += idealHon
			continue
		}

		if cfg.Scheme == SchemeTorsk && link.buddyMal {
			// The buddy sees the initiator and the key together.
			sum += 0
			continue
		}
		if cfg.Scheme == SchemeChord {
			// Recursive Chord: the first malicious hop sees the key and
			// its predecessor hop. A malicious FIRST hop identifies I
			// outright; a deeper one narrows I to the initiators whose
			// paths route through the observed predecessor — a region
			// comparable to that hop's distance from the target
			// (distance roughly halves per hop).
			firstMal := -1
			for i := range link.observed {
				if link.observed[i] {
					firstMal = i
					break
				}
			}
			switch {
			case firstMal == 0:
				sum += 0
			case firstMal > 0:
				cone := float64(a.ring.Dist(path[firstMal-1], target))
				h := math.Log2(math.Max(2, cone))
				if h > idealHon {
					h = idealHon
				}
				sum += h
			default:
				sum += idealHon
			}
			continue
		}

		var linkedReal []int
		for i, q := range path {
			if link.linkable[i] {
				linkedReal = append(linkedReal, q)
			}
		}
		// Linkable dummies also enter the distance computation (Eq. 6
		// uses Q^l; dummies can only blur it).
		minD := a.ring.N()
		for _, q := range linkedReal {
			if d := a.ring.Dist(q, target); d < minD {
				minD = d
			}
		}
		for i := 0; i < cfg.Dummies; i++ {
			dl := a.sampleDummyLink()
			if dl {
				if d := rng.Intn(a.ring.N()); d < minD {
					minD = d
				}
			}
		}

		if len(linkedReal) == 0 {
			// Eq. (5): no linkable real query.
			if link.iObserved {
				pIObs := a.pInitiatorObserved()
				others := binomial(rng, int(float64(concurrent)*(1-cfg.F)), pIObs)
				sum += math.Log2(float64(1 + others))
			} else {
				sum += idealHon
			}
			continue
		}

		// Eqs. (6)–(7): weight every concurrent lookup with a linkable
		// query by ξ of its minimum linkable-query distance to T.
		weights := []float64{a.xi.at(minD)}
		for j := 0; j < concurrent-1; j++ {
			if rng.Float64() < cfg.F {
				continue // malicious initiators are excluded from the set
			}
			other := a.sampleQueryLinkability(a.sampleHopCount())
			m := 0
			for _, b := range other.linkable {
				if b {
					m++
				}
			}
			if m == 0 {
				continue
			}
			// This lookup's queries sit at positions unrelated to T.
			od := a.ring.N()
			for k := 0; k < m; k++ {
				if d := rng.Intn(a.ring.N()); d < od {
					od = d
				}
			}
			weights = append(weights, a.xi.at(od))
		}
		sum += entropyOfWeights(weights)
	}
	return sum / float64(cfg.Trials)
}

// pInitiatorObserved returns the per-lookup probability that the scheme
// exposes the initiator's identity somewhere.
func (a *Analyzer) pInitiatorObserved() float64 {
	f := a.cfg.F
	switch a.cfg.Scheme {
	case SchemeOctopus:
		return 1 - (1-f)*((1-f)*(1-f)) // A or a walk's first hops
	case SchemeNISAN:
		return 1 - math.Pow(1-f, 8)
	case SchemeTorsk:
		return 1 - (1-f)*(1-f)
	case SchemeChord:
		return f
	}
	return f
}

// sampleDummyLink reports whether one dummy query is linkable to I under
// the current scheme (only Octopus sends dummies).
func (a *Analyzer) sampleDummyLink() bool {
	if a.cfg.Scheme != SchemeOctopus || a.cfg.Dummies == 0 {
		return false
	}
	f := a.cfg.F
	rng := a.rng
	aMal := rng.Float64() < f // approximation: shared-A resampled per dummy
	cMal := rng.Float64() < f
	dMal := rng.Float64() < f
	eMal := rng.Float64() < f
	return (dMal || eMal) && aMal && cMal
}
