package anonymity

import (
	"math"
	"math/rand"
)

// Pre-simulated distributions (§6.2–6.3): the paper obtains ξ, γ and χ "via
// pre-simulations of the lookup"; we do the same on the position-space ring.

// logBin buckets a positive distance into ~64 logarithmic bins.
func logBin(d int) int {
	if d <= 0 {
		return 0
	}
	return int(math.Log2(float64(d))) + 1
}

const nBins = 64

// distXi is ξ(x): the probability density that the minimum distance from a
// TRUE lookup's linkable queried nodes to its target is x (binned
// logarithmically; density per position within the bin).
type distXi struct {
	density [nBins]float64
	// noneP is the probability a true lookup has no linkable query.
	noneP float64
}

func (x *distXi) at(d int) float64 {
	b := logBin(d)
	if b >= nBins {
		b = nBins - 1
	}
	return x.density[b]
}

// distGamma is γ(i, z): where the target sits inside a TRUE estimation
// range, as deciles of the range size, conditioned on a log-binned range
// size.
type distGamma struct {
	// dec[zbin][decile] is P(target in that decile | z).
	dec [nBins][10]float64
	// entropyCache[zbin] is the entropy (bits) of the target's position
	// within a range of that size under γ.
	entropyCache [nBins]float64
}

// rangeEntropy returns H(T | T ∈ range of size z) under γ.
func (g *distGamma) rangeEntropy(z int) float64 {
	b := logBin(z)
	if b >= nBins {
		b = nBins - 1
	}
	return g.entropyCache[b]
}

// distChi is χ(x, y): the joint probability that a TRUE linkable set has x
// queries and largest hop in log bin y.
type distChi struct {
	p map[[2]int]float64
}

func (c *distChi) at(size, largestHop int) float64 {
	if v, ok := c.p[[2]int{size, logBin(largestHop)}]; ok {
		return v
	}
	return 1e-9 // unseen shapes get negligible (not zero) likelihood
}

// preSim runs `runs` simulated lookups under the scheme's per-query
// linkability probability and collects ξ, γ, χ plus the hop-count
// distribution.
func preSim(ring *Ring, rng *rand.Rand, runs int, linkProb func() []bool, queryCount func(q int) []bool) (*distXi, *distGamma, *distChi, []float64) {
	xi := &distXi{}
	gamma := &distGamma{}
	chi := &distChi{p: make(map[[2]int]float64)}
	var xiCounts [nBins]float64
	var xiBinWidth [nBins]float64
	for b := 0; b < nBins; b++ {
		lo := 1 << uint(b-1)
		if b == 0 {
			lo = 0
		}
		hi := 1 << uint(b)
		xiBinWidth[b] = float64(hi - lo)
		if b == 0 {
			xiBinWidth[b] = 1
		}
	}
	var gammaCounts [nBins][10]float64
	hopHist := make([]float64, 0, 64)
	none := 0
	total := 0

	for r := 0; r < runs; r++ {
		init := rng.Intn(ring.N())
		key := rng.Uint64()
		owner := ring.Owner(key)
		path := ring.LookupPath(init, key)
		for len(hopHist) <= len(path) {
			hopHist = append(hopHist, 0)
		}
		hopHist[len(path)]++

		linkable := queryCount(len(path))
		var linked []int
		for i, q := range path {
			if i < len(linkable) && linkable[i] {
				linked = append(linked, q)
			}
		}
		total++
		if len(linked) == 0 {
			none++
			continue
		}
		// ξ: min distance from linked queries to the target.
		minD := ring.N()
		for _, q := range linked {
			if d := ring.Dist(q, owner); d < minD {
				minD = d
			}
		}
		b := logBin(minD)
		if b >= nBins {
			b = nBins - 1
		}
		xiCounts[b]++
		// χ: subset shape of the true linkable set.
		chi.p[[2]int{len(linked), logBin(ring.LargestHop(linked))}]++
		// γ: the target's position inside the true estimation range
		// (closed at the lower end: the last query may be the owner).
		lo, size := ring.EstimateRange(linked)
		loc := ring.Dist(lo, owner)
		if loc >= 0 && loc <= size {
			zb := logBin(size)
			if zb >= nBins {
				zb = nBins - 1
			}
			dec := loc * 10 / (size + 1)
			if dec > 9 {
				dec = 9
			}
			gammaCounts[zb][dec]++
		}
	}

	// Normalize ξ into densities.
	linkedRuns := float64(total - none)
	if linkedRuns > 0 {
		for b := 0; b < nBins; b++ {
			xi.density[b] = xiCounts[b] / linkedRuns / xiBinWidth[b]
		}
	}
	xi.noneP = float64(none) / float64(total)
	// Normalize χ.
	for k := range chi.p {
		chi.p[k] /= linkedRuns
	}
	// Normalize γ and cache per-bin entropies.
	for zb := 0; zb < nBins; zb++ {
		var sum float64
		for d := 0; d < 10; d++ {
			sum += gammaCounts[zb][d]
		}
		z := float64(int(1) << uint(zb))
		if sum == 0 {
			// Unobserved range sizes: fall back to uniform within the
			// range.
			for d := 0; d < 10; d++ {
				gamma.dec[zb][d] = 0.1
			}
			gamma.entropyCache[zb] = math.Log2(math.Max(1, z))
			continue
		}
		var h float64
		for d := 0; d < 10; d++ {
			p := gammaCounts[zb][d] / sum
			gamma.dec[zb][d] = p
			if p > 0 {
				// Entropy of the decile choice plus uniform spread
				// within the decile.
				h += -p*math.Log2(p) + p*math.Log2(math.Max(1, z/10))
			}
		}
		gamma.entropyCache[zb] = h
	}
	// Normalize hop histogram.
	for i := range hopHist {
		hopHist[i] /= float64(total)
	}
	_ = linkProb
	return xi, gamma, chi, hopHist
}
