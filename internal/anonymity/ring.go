// Package anonymity reproduces the paper's §6 anonymity analysis: the
// entropy H(I) of the lookup initiator and H(T) of the lookup target under
// a colluding fraction f, computed by probabilistic modelling with the help
// of simulation (the paper's own approach — its authors wrote two small C++
// simulators for exactly this).
//
// The package works in position space: a static ring of N nodes (the paper
// assumes a static network for the worst-case analysis, §6) on which
// iterative full-table lookups are simulated to obtain query-position
// traces. The adversary's observation process (which relays/queried nodes
// are malicious, what is linkable to whom) is layered on top per scheme:
// Octopus, NISAN, Torsk, and recursive Chord. Entropies follow Eqs. (1)–(21)
// via Monte Carlo over observations, with the pre-simulated distributions
// ξ (min linkable-query distance), γ (target position within an estimation
// range), and χ (linkable-subset shape) estimated from the same lookup
// model.
package anonymity

import (
	"math/rand"
	"sort"
)

// Ring is a static network in position space: n sorted random identifiers.
type Ring struct {
	ids []uint64
	n   int
	// fingersExp lists the finger exponents every node maintains (top
	// octaves of the ring, wide enough to cover any n).
	fingerExps []uint
	succListK  int
}

// NewRing draws n distinct identifiers.
func NewRing(n int, succListK int, rng *rand.Rand) *Ring {
	ids := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for len(ids) < n {
		v := rng.Uint64()
		if !seen[v] {
			seen[v] = true
			ids = append(ids, v)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Fingers span from just above the expected gap up to half the ring,
	// mirroring the useful (distinct) fingers of a real deployment.
	exps := make([]uint, 0, 40)
	for e := uint(12); e < 64; e++ {
		if 1<<e > uint64(0) { // always true; kept for clarity
			exps = append(exps, e)
		}
	}
	return &Ring{ids: ids, n: n, fingerExps: exps, succListK: succListK}
}

// N returns the population size.
func (r *Ring) N() int { return r.n }

// ID returns the identifier at position i.
func (r *Ring) ID(i int) uint64 { return r.ids[((i%r.n)+r.n)%r.n] }

// Owner returns the position owning key: the first node clockwise at or
// after key.
func (r *Ring) Owner(key uint64) int {
	i := sort.Search(r.n, func(i int) bool { return r.ids[i] >= key })
	if i == r.n {
		return 0
	}
	return i
}

// Dist returns the clockwise distance in positions from i to j.
func (r *Ring) Dist(i, j int) int {
	d := (j - i) % r.n
	if d < 0 {
		d += r.n
	}
	return d
}

// fingerOf returns the position of node i's finger at exponent e:
// owner(id_i + 2^e).
func (r *Ring) fingerOf(i int, e uint) int {
	return r.Owner(r.ids[i] + 1<<e)
}

// bestNext returns the position a full-table lookup standing at node `cur`
// jumps to next for `key`, considering cur's fingers and successor list,
// and whether the owner is already within cur's successor list.
func (r *Ring) bestNext(cur int, key uint64) (next int, done bool) {
	owner := r.Owner(key)
	if d := r.Dist(cur, owner); d <= r.succListK {
		return owner, true
	}
	// The best candidate strictly preceding the owner, maximally far
	// clockwise from cur. Successor-list entries cover distances 1..k;
	// fingers cover the octaves.
	best := cur
	bestDist := 0
	consider := func(p int) {
		dOwner := r.Dist(cur, owner)
		dp := r.Dist(cur, p)
		if dp == 0 || dp >= dOwner {
			// p is at/after the owner (or is cur): not a preceding hop.
			// dp == dOwner means p IS the owner — handled by succ list
			// only, since querying the owner itself would overshoot in
			// table-lookup terms; still allow it as final hop below.
			if dp == dOwner {
				if dp > bestDist {
					best, bestDist = p, dp
				}
			}
			return
		}
		if dp > bestDist {
			best, bestDist = p, dp
		}
	}
	for _, e := range r.fingerExps {
		consider(r.fingerOf(cur, e))
	}
	for s := 1; s <= r.succListK; s++ {
		consider((cur + s) % r.n)
	}
	if bestDist == 0 {
		return owner, true
	}
	return best, false
}

// LookupPath simulates an iterative full-table lookup from initiator init
// toward key, returning the positions of the queried nodes in order. The
// final queried node's successor list contains the owner. This models both
// the Octopus anonymous lookup and the NISAN lookup (identical convergence;
// they differ only in who contacts whom).
func (r *Ring) LookupPath(init int, key uint64) []int {
	var queried []int
	cur, done := r.bestNext(init, key)
	for hop := 0; hop < 128; hop++ {
		queried = append(queried, cur)
		if done || r.Dist(cur, r.Owner(key)) <= r.succListK {
			break
		}
		cur, done = r.bestNext(cur, key)
	}
	return queried
}

// bestFingerToward returns node cur's farthest finger that does not pass
// the position `toward`, with its exponent.
func (r *Ring) bestFingerToward(cur, toward int) (pos int, exp uint, ok bool) {
	limit := r.Dist(cur, toward)
	best := -1
	bestDist := 0
	var bestExp uint
	for _, e := range r.fingerExps {
		f := r.fingerOf(cur, e)
		d := r.Dist(cur, f)
		if d == 0 || d > limit {
			continue
		}
		if d > bestDist {
			best, bestDist, bestExp = f, d, e
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestExp, true
}

// EstimateRange mounts the range-estimation attack (Appendix III) on an
// ordered set of observed query positions for one lookup. The target lies
// at or after the last observed query ("nodes succeeding T will not be
// queried", so E_j is an inclusive lower bound — a table fetch may hit the
// owner itself); for the upper bound the adversary locally re-simulates the
// lookup between each pair of consecutive observed queries ("the adversary
// first decides the queried nodes between Ei and Ej by simulating the
// lookup from Ei to Ej") and caps the target below the next-larger finger
// of every virtual hop. It returns the closed range [lo, lo+size].
func (r *Ring) EstimateRange(queried []int) (lo, size int) {
	if len(queried) == 0 {
		return 0, r.n
	}
	last := queried[len(queried)-1]
	lo = last
	bound := r.n - 1 // full wrap
	for k := 0; k+1 < len(queried); k++ {
		cur, dst := queried[k], queried[k+1]
		for step := 0; step < 64 && cur != dst; step++ {
			next, exp, ok := r.bestFingerToward(cur, dst)
			if !ok || r.Dist(cur, next) == 0 {
				break // the remaining gap was covered by a successor list
			}
			// The true lookup jumped cur → next, so the target
			// precedes cur's next DISTINCT finger (in sparse regions
			// several exponents share one finger node).
			capNode := -1
			for e := exp + 1; e < 64; e++ {
				if f := r.fingerOf(cur, e); f != next {
					capNode = f
					break
				}
			}
			if capNode >= 0 {
				capPos := (capNode - 1 + r.n) % r.n
				if d := r.Dist(last, capPos); d < bound {
					bound = d
				}
			}
			if next == cur {
				break
			}
			cur = next
		}
	}
	if bound <= 0 {
		bound = 1
	}
	return lo, bound
}

// SubsetConsistent implements the dummy-filtering test (Appendix III): a
// candidate subset of observed positions can be the real query set only if
// walking it in observation order moves strictly clockwise toward a common
// target region. Positions must be supplied in observation (time) order.
func (r *Ring) SubsetConsistent(positions []int) bool {
	if len(positions) <= 1 {
		return true
	}
	first := positions[0]
	prevDist := 0
	for _, p := range positions[1:] {
		d := r.Dist(first, p)
		if d <= prevDist {
			return false // moved backwards: must contain a dummy
		}
		prevDist = d
	}
	return true
}

// LargestHop returns the largest position jump between consecutive entries
// of an ordered query subset — the paper's second χ characteristic.
func (r *Ring) LargestHop(positions []int) int {
	if len(positions) <= 1 {
		return 0
	}
	largest := 0
	for k := 0; k+1 < len(positions); k++ {
		if d := r.Dist(positions[k], positions[k+1]); d > largest {
			largest = d
		}
	}
	return largest
}
