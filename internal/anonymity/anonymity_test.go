package anonymity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRing(t *testing.T, n int) (*Ring, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	return NewRing(n, 6, rng), rng
}

func TestRingOwner(t *testing.T) {
	ring, _ := testRing(t, 1000)
	for i := 0; i < 1000; i++ {
		if got := ring.Owner(ring.ID(i)); got != i {
			t.Fatalf("Owner(ID(%d)) = %d", i, got)
		}
		if got := ring.Owner(ring.ID(i) - 1); got != i {
			t.Fatalf("Owner(ID(%d)-1) = %d, want %d", i, got, i)
		}
	}
	// A key beyond the largest ID wraps to position 0.
	if got := ring.Owner(ring.ID(999) + 1); got != 0 {
		t.Errorf("wrap owner = %d, want 0", got)
	}
}

func TestRingDist(t *testing.T) {
	ring, _ := testRing(t, 100)
	if ring.Dist(10, 10) != 0 {
		t.Error("self distance not 0")
	}
	if ring.Dist(10, 20) != 10 {
		t.Error("forward distance wrong")
	}
	if ring.Dist(90, 10) != 20 {
		t.Error("wrap distance wrong")
	}
}

func TestLookupPathConverges(t *testing.T) {
	ring, rng := testRing(t, 5000)
	for trial := 0; trial < 50; trial++ {
		init := rng.Intn(5000)
		key := rng.Uint64()
		owner := ring.Owner(key)
		path := ring.LookupPath(init, key)
		if len(path) == 0 {
			t.Fatal("empty path")
		}
		last := path[len(path)-1]
		if d := ring.Dist(last, owner); d > 6 {
			t.Errorf("final queried node %d positions before owner, want <= succ list", d)
		}
		// Paths must make monotone clockwise progress.
		prev := -1
		for _, p := range path {
			d := ring.Dist(init, p)
			if d <= prev {
				t.Fatalf("path not monotone: %v", path)
			}
			prev = d
		}
	}
}

func TestLookupPathLogarithmic(t *testing.T) {
	ring, rng := testRing(t, 20000)
	total := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		path := ring.LookupPath(rng.Intn(20000), rng.Uint64())
		total += len(path)
	}
	avg := float64(total) / trials
	if avg > 20 {
		t.Errorf("average path length %.1f, want O(log N)", avg)
	}
	if avg < 2 {
		t.Errorf("average path length %.1f, suspiciously short", avg)
	}
}

func TestEstimateRangeCoversTarget(t *testing.T) {
	ring, rng := testRing(t, 20000)
	covered, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		key := rng.Uint64()
		owner := ring.Owner(key)
		path := ring.LookupPath(rng.Intn(20000), key)
		lo, size := ring.EstimateRange(path)
		total++
		loc := ring.Dist(lo, owner)
		if loc >= 0 && loc <= size {
			covered++
		}
	}
	// The range computed from the FULL query trace must almost always
	// contain the true target — that is the attack's power.
	if covered < total*95/100 {
		t.Errorf("range covered target in %d/%d trials", covered, total)
	}
}

func TestEstimateRangeTightForFullTrace(t *testing.T) {
	ring, rng := testRing(t, 20000)
	var sizes float64
	const trials = 100
	for i := 0; i < trials; i++ {
		path := ring.LookupPath(rng.Intn(20000), rng.Uint64())
		_, size := ring.EstimateRange(path)
		sizes += float64(size)
	}
	avg := sizes / trials
	// Observing the full trace should pin the target down to a region
	// orders of magnitude below N.
	if avg > 2000 {
		t.Errorf("average range size %.0f of N=20000; range estimation too weak", avg)
	}
}

func TestSubsetConsistent(t *testing.T) {
	ring, _ := testRing(t, 1000)
	// Monotone clockwise positions are consistent.
	if !ring.SubsetConsistent([]int{10, 40, 90}) {
		t.Error("monotone subset rejected")
	}
	// A backwards step must be rejected.
	if ring.SubsetConsistent([]int{10, 90, 40}) {
		t.Error("backwards subset accepted")
	}
	if !ring.SubsetConsistent([]int{5}) || !ring.SubsetConsistent(nil) {
		t.Error("trivial subsets must be consistent")
	}
}

func TestLargestHop(t *testing.T) {
	ring, _ := testRing(t, 1000)
	if got := ring.LargestHop([]int{10, 15, 400}); got != 385 {
		t.Errorf("LargestHop = %d, want 385", got)
	}
	if got := ring.LargestHop([]int{7}); got != 0 {
		t.Errorf("LargestHop single = %d, want 0", got)
	}
}

func TestPropDistTriangleOnRing(t *testing.T) {
	ring, _ := testRing(t, 997)
	f := func(a, b uint16) bool {
		i, j := int(a)%997, int(b)%997
		if i == j {
			return ring.Dist(i, j) == 0
		}
		return ring.Dist(i, j)+ring.Dist(j, i) == 997
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func smallConfig(scheme Scheme) Config {
	cfg := DefaultConfig()
	cfg.N = 5000
	cfg.Trials = 150
	cfg.PreSimRuns = 1000
	cfg.Scheme = scheme
	return cfg
}

func TestOctopusNearOptimal(t *testing.T) {
	res := New(smallConfig(SchemeOctopus)).Analyze()
	if res.LeakInitiator > 1.5 {
		t.Errorf("Octopus initiator leak = %.2f bits, want < 1.5", res.LeakInitiator)
	}
	if res.LeakTarget > 2.0 {
		t.Errorf("Octopus target leak = %.2f bits, want < 2", res.LeakTarget)
	}
	if res.HInitiator > res.IdealInitiator+0.01 {
		t.Errorf("H(I)=%.2f exceeds the ideal %.2f", res.HInitiator, res.IdealInitiator)
	}
}

func TestComparativeOrdering(t *testing.T) {
	// The paper's headline comparison (Figs. 5(b) and 6): Octopus leaks
	// several times less than every baseline on both metrics, and NISAN
	// is by far the worst for target anonymity (range estimation).
	results := map[Scheme]Result{}
	for _, s := range []Scheme{SchemeOctopus, SchemeNISAN, SchemeTorsk, SchemeChord} {
		results[s] = New(smallConfig(s)).Analyze()
	}
	oct := results[SchemeOctopus]
	// At the full N = 100 000 the paper's gap is 4–6×; the reduced test
	// population shrinks candidate sets, so require a clear 1.5× gap.
	for _, s := range []Scheme{SchemeNISAN, SchemeTorsk, SchemeChord} {
		if results[s].LeakInitiator < 1.5*oct.LeakInitiator {
			t.Errorf("%v initiator leak %.2f not ≫ Octopus %.2f", s, results[s].LeakInitiator, oct.LeakInitiator)
		}
		if results[s].LeakTarget < 1.5*oct.LeakTarget {
			t.Errorf("%v target leak %.2f not ≫ Octopus %.2f", s, results[s].LeakTarget, oct.LeakTarget)
		}
	}
	if results[SchemeNISAN].LeakTarget < results[SchemeTorsk].LeakTarget ||
		results[SchemeNISAN].LeakTarget < results[SchemeChord].LeakTarget {
		t.Errorf("NISAN should leak the most target information: %v", results)
	}
}

func TestLeakGrowsWithMaliciousFraction(t *testing.T) {
	var prev float64 = -1
	for _, f := range []float64{0.04, 0.12, 0.20} {
		cfg := smallConfig(SchemeOctopus)
		cfg.F = f
		res := New(cfg).Analyze()
		leak := res.IdealTarget - res.HTarget
		if prev >= 0 && leak+0.35 < prev {
			t.Errorf("target leak decreased with f: f=%.2f leak=%.2f, prev=%.2f", f, leak, prev)
		}
		prev = leak
	}
}

func TestDummiesImproveTargetAnonymity(t *testing.T) {
	few := smallConfig(SchemeOctopus)
	few.Dummies = 0
	few.Trials = 300
	many := smallConfig(SchemeOctopus)
	many.Dummies = 6
	many.Trials = 300
	hFew := New(few).Analyze().HTarget
	hMany := New(many).Analyze().HTarget
	// §4.2/Fig. 5(c): dummy queries blur the range estimation. Allow
	// Monte Carlo noise but require no significant degradation.
	if hMany+0.3 < hFew {
		t.Errorf("dummies degraded target anonymity: 0 dummies H=%.2f, 6 dummies H=%.2f", hFew, hMany)
	}
}

func TestZeroMaliciousPerfectAnonymity(t *testing.T) {
	cfg := smallConfig(SchemeOctopus)
	cfg.F = 0
	res := New(cfg).Analyze()
	if math.Abs(res.HInitiator-res.IdealInitiator) > 0.01 {
		t.Errorf("f=0: H(I)=%.3f, want ideal %.3f", res.HInitiator, res.IdealInitiator)
	}
	if math.Abs(res.HTarget-res.IdealTarget) > 0.01 {
		t.Errorf("f=0: H(T)=%.3f, want ideal %.3f", res.HTarget, res.IdealTarget)
	}
}

func TestEntropyOfWeights(t *testing.T) {
	if h := entropyOfWeights([]float64{1, 1, 1, 1}); math.Abs(h-2) > 1e-9 {
		t.Errorf("uniform 4 weights: H=%v, want 2", h)
	}
	if h := entropyOfWeights([]float64{1}); h != 0 {
		t.Errorf("single weight: H=%v, want 0", h)
	}
	if h := entropyOfWeights(nil); h != 0 {
		t.Errorf("no weights: H=%v, want 0", h)
	}
}

func TestBinomial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum int
	const n, p, trials = 1000, 0.3, 2000
	for i := 0; i < trials; i++ {
		k := binomial(rng, n, p)
		if k < 0 || k > n {
			t.Fatalf("binomial out of range: %d", k)
		}
		sum += k
	}
	mean := float64(sum) / trials
	if math.Abs(mean-300) > 10 {
		t.Errorf("binomial mean = %.1f, want ≈300", mean)
	}
	if binomial(rng, 10, 0) != 0 || binomial(rng, 10, 1) != 10 {
		t.Error("degenerate binomials wrong")
	}
}
