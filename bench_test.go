// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (README.md maps each to its experiment runner), at
// bench-friendly scale. The full-scale numbers come from cmd/octopus-bench;
// these targets exercise the identical code paths and report the headline
// metric of each experiment as a custom unit.
package octopus

import (
	"math/rand"
	"testing"
	"time"

	"github.com/octopus-dht/octopus/internal/adversary"
	"github.com/octopus-dht/octopus/internal/anonymity"
	"github.com/octopus-dht/octopus/internal/chord"
	"github.com/octopus-dht/octopus/internal/core"
	"github.com/octopus-dht/octopus/internal/experiments"
	"github.com/octopus-dht/octopus/internal/id"
	"github.com/octopus-dht/octopus/internal/transport"
	"github.com/octopus-dht/octopus/internal/transport/chantransport"
)

func benchSecurityConfig(strategy adversary.Strategy) experiments.SecurityConfig {
	return experiments.SecurityConfig{
		N:           150,
		F:           0.20,
		Strategy:    strategy,
		Duration:    400 * time.Second,
		SampleEvery: 100 * time.Second,
		Seed:        1,
	}
}

func benchAnonConfig(scheme anonymity.Scheme, dummies int) anonymity.Config {
	return anonymity.Config{
		N:          4000,
		F:          0.20,
		Alpha:      0.01,
		Dummies:    dummies,
		WalkLength: 3,
		SuccList:   6,
		Scheme:     scheme,
		Trials:     60,
		PreSimRuns: 600,
		Seed:       1,
	}
}

func BenchmarkTable1TimingAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := adversary.DefaultTimingConfig()
		cfg.N = 100_000
		cfg.SamplePairs = 100
		cfg.Seed = int64(i + 1)
		res := adversary.SimulateTimingAttack(cfg)
		b.ReportMetric(res.ErrorRate*100, "err%")
		b.ReportMetric(res.InfoLeakBits, "leak-bits")
	}
}

func BenchmarkTable2Identification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSecurityConfig(adversary.Strategy{AttackRate: 1, BiasLookups: true})
		cfg.ChurnMean = 60 * time.Minute
		cfg.Seed = int64(i + 1)
		res := experiments.RunSecurity(cfg)
		b.ReportMetric(res.FalsePositiveRate*100, "FP%")
		b.ReportMetric(res.FalseNegativeRate*100, "FN%")
	}
}

func BenchmarkTable3Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultEfficiencyConfig()
		cfg.Lookups = 60
		cfg.WarmUp = 90 * time.Second
		cfg.BandwidthWindow = 3 * time.Minute
		cfg.Seed = int64(i + 1)
		res := experiments.RunOctopusEfficiency(cfg)
		b.ReportMetric(res.MeanLatency.Seconds(), "mean-s")
		b.ReportMetric(res.BandwidthKbps[5*time.Minute], "kbps@5m")
	}
}

func benchDecay(b *testing.B, strategy adversary.Strategy, lookups, dos bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := benchSecurityConfig(strategy)
		if lookups {
			cfg.LookupEvery = time.Minute
		}
		cfg.DoSDefense = dos
		cfg.Seed = int64(i + 1)
		res := experiments.RunSecurity(cfg)
		b.ReportMetric(res.FinalMalicious*100, "final-mal%")
		if lookups {
			b.ReportMetric(float64(res.TotalBiased), "biased")
		}
	}
}

func BenchmarkFig3aLookupBias(b *testing.B) {
	benchDecay(b, adversary.Strategy{AttackRate: 1, BiasLookups: true}, false, false)
}

func BenchmarkFig3bBiasedLookups(b *testing.B) {
	benchDecay(b, adversary.Strategy{AttackRate: 1, BiasLookups: true}, true, false)
}

func BenchmarkFig3cManipulation(b *testing.B) {
	benchDecay(b, adversary.Strategy{
		AttackRate: 1, ManipulateFingers: true, ConsistentPredRate: 0.5}, false, false)
}

func BenchmarkFig4Pollution(b *testing.B) {
	benchDecay(b, adversary.Strategy{
		AttackRate: 1, BiasLookups: true, ManipulateFingers: true,
		ConsistentPredRate: 0.5}, false, false)
}

func BenchmarkFig9SelectiveDoS(b *testing.B) {
	benchDecay(b, adversary.Strategy{AttackRate: 1, SelectiveDrop: true}, true, true)
}

func BenchmarkFig5aInitiatorAnonymity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		b.ReportMetric(res.LeakInitiator, "leakI-bits")
	}
}

func BenchmarkFig5bInitiatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oct := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		nis := anonymity.New(benchAnonConfig(anonymity.SchemeNISAN, 0)).Analyze()
		b.ReportMetric(nis.LeakInitiator/oct.LeakInitiator, "nisan/octopus")
	}
}

func BenchmarkFig5cTargetAnonymity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		b.ReportMetric(res.LeakTarget, "leakT-bits")
	}
}

func BenchmarkFig6TargetComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oct := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		nis := anonymity.New(benchAnonConfig(anonymity.SchemeNISAN, 0)).Analyze()
		b.ReportMetric(nis.LeakTarget/oct.LeakTarget, "nisan/octopus")
	}
}

func BenchmarkFig7aLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultEfficiencyConfig()
		cfg.Lookups = 60
		cfg.WarmUp = 90 * time.Second
		cfg.BandwidthWindow = time.Minute
		cfg.Seed = int64(i + 1)
		res := experiments.RunChordEfficiency(cfg)
		b.ReportMetric(res.MedianLatency.Seconds(), "median-s")
	}
}

func BenchmarkFig7bCAWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSecurityConfig(adversary.Strategy{AttackRate: 1, BiasLookups: true})
		cfg.Seed = int64(i + 1)
		res := experiments.RunSecurity(cfg)
		pts := res.CAWorkloadSeries().Points
		if len(pts) > 0 {
			b.ReportMetric(pts[0].V, "peak-msg/s")
			b.ReportMetric(pts[len(pts)-1].V, "final-msg/s")
		}
	}
}

// BenchmarkLoadAnonLookup is the serving-path headline: open-loop load on
// a deployment served sequentially (the paper's path: α=1, one worker,
// passive pool) versus concurrently (α=3, 8 workers, managed pool). The
// custom units are deterministic under the fixed seed, so the benchmark
// gate pins both throughput ceilings and their ratio.
func BenchmarkLoadAnonLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seqCfg := experiments.SequentialLoadConfig()
		seqCfg.N = 100
		seqCfg.Duration = time.Minute
		parCfg := experiments.DefaultLoadConfig()
		parCfg.N = 100
		parCfg.Duration = time.Minute
		seq := experiments.RunLoad(seqCfg)
		par := experiments.RunLoad(parCfg)
		b.ReportMetric(seq.Throughput, "thr-seq/s")
		b.ReportMetric(par.Throughput, "thr-par/s")
		b.ReportMetric(par.Throughput/seq.Throughput, "speedup")
		b.ReportMetric(par.P95.Seconds(), "p95-s")
	}
}

// tierLoadConfig is the routing-tier comparison point: 10k simulated
// nodes, α=1, no result cache and uniform keys, so every lookup pays the
// tier's full post-walk convergence cost — the axis under measurement.
// Rate and window are modest because the headline is latency, not
// throughput: ~120 offered lookups give a stable p95 without inflating
// the (already large) 10k-node simulation.
func tierLoadConfig(tier string) experiments.LoadConfig {
	cfg := experiments.DefaultLoadConfig()
	cfg.N = 10_000
	cfg.Tier = tier
	cfg.ServingNodes = 4
	cfg.Clients = 8
	cfg.Rate = 2
	cfg.Duration = time.Minute
	cfg.WarmUp = 30 * time.Second
	cfg.Alpha = 1
	cfg.Pool = 16
	cfg.CacheSize = 0
	cfg.HotKeys = 0
	return cfg
}

// BenchmarkTierLoad10k is the routing-tier headline: the load experiment
// at 10k simulated nodes, same seed and offered load, finger tier versus
// one-hop tier. The gate pins both p95s and their ratio — the one-hop
// tier's reason to exist is cutting the multi-hop convergence phase to a
// single confirming query, and p95-gain is that claim as a number.
// Runs minutes, not seconds: pass -timeout ≥ 45m and -benchtime 1x.
func BenchmarkTierLoad10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		finger := experiments.RunLoad(tierLoadConfig(core.TierFinger))
		onehop := experiments.RunLoad(tierLoadConfig(core.TierOneHop))
		b.ReportMetric(finger.P95.Seconds(), "finger-p95-s")
		b.ReportMetric(onehop.P95.Seconds(), "onehop-p95-s")
		b.ReportMetric(finger.P95.Seconds()/onehop.P95.Seconds(), "p95-gain")
	}
}

// BenchmarkTierChaosMaintenance pins the one-hop tier's maintenance cost
// where it is worst: the chaos storm (40% mass-kill, rolling partitions,
// flash-crowd rejoin), every event of which must be disseminated
// ring-wide. The gated unit is maintenance bytes per live node per
// simulated second — the D1HT-style aggregation argument as a number; a
// drift upward means event batching regressed.
func BenchmarkTierChaosMaintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultChaosConfig()
		cfg.N = 200
		cfg.Tier = core.TierOneHop
		cfg.WarmUp = 45 * time.Second
		cfg.Baseline = 30 * time.Second
		cfg.PostRecovery = time.Minute
		cfg.Seed = int64(i + 1)
		res := experiments.RunChaos(cfg)
		b.ReportMetric(res.TierMaintBytesPerNodeSec, "maint-B/node/s")
		b.ReportMetric(res.PostRecovery.LookupSuccess*100, "success%")
	}
}

// BenchmarkStorageWorkload is the storage headline: a read/write mix on the
// replicated key-value store under mid-run churn (internal/experiments
// RunStorage). Hit rate and the client-observed latency percentiles are
// deterministic under the fixed seed, so the benchmark gate pins them.
func BenchmarkStorageWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultStorageConfig()
		cfg.N = 80
		cfg.Keys = 24
		cfg.Duration = time.Minute
		cfg.WarmUp = 30 * time.Second
		cfg.Kills = 2
		res := experiments.RunStorage(cfg)
		b.ReportMetric(res.HitRate*100, "hit%")
		b.ReportMetric(res.GetP95.Seconds(), "get-p95-s")
		b.ReportMetric(res.PutP95.Seconds(), "put-p95-s")
	}
}

// --- Ablations ---

// BenchmarkAblationDummyPlacement compares target-anonymity leak with and
// without dummy queries.
func BenchmarkAblationDummyPlacement(b *testing.B) {
	for _, dummies := range []int{0, 6} {
		b.Run(map[int]string{0: "none", 6: "six"}[dummies], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, dummies)).Analyze()
				b.ReportMetric(res.LeakTarget, "leakT-bits")
			}
		})
	}
}

// BenchmarkAblationPathSplitting quantifies §4.2's argument: a single shared
// path makes every query linkable to the same exit, collapsing the dummy
// defense. Modeled by comparing Octopus (split paths) against NISAN-style
// full linkage.
func BenchmarkAblationPathSplitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		split := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		linked := anonymity.New(benchAnonConfig(anonymity.SchemeNISAN, 6)).Analyze()
		b.ReportMetric(split.LeakTarget, "split-leakT")
		b.ReportMetric(linked.LeakTarget, "linked-leakT")
	}
}

// --- Transport & codec hot path ---
//
// The wire codec and the transport RPC loop are the hot path of any real
// deployment: every message of every lookup crosses them. These benchmarks
// track encode/decode/size cost for the dominant message (a signed routing
// table) and the full serialized RPC round-trip over the concurrent
// channel transport.

// benchTable builds a representative signed table: 12 fingers with
// exponents, 6 successors, a 40-byte signature.
func benchTable() chord.GetTableResp {
	rng := rand.New(rand.NewSource(1))
	rt := chord.RoutingTable{
		Owner:     chord.Peer{ID: id.ID(rng.Uint64()), Addr: 1},
		Timestamp: 90 * time.Second,
		Sig:       make([]byte, 40),
	}
	rng.Read(rt.Sig)
	for i := 0; i < 12; i++ {
		rt.Fingers = append(rt.Fingers, chord.Peer{ID: id.ID(rng.Uint64()), Addr: transport.Addr(2 + i)})
		rt.FingerExps = append(rt.FingerExps, uint8(52+i))
	}
	for i := 0; i < 6; i++ {
		rt.Successors = append(rt.Successors, chord.Peer{ID: id.ID(rng.Uint64()), Addr: transport.Addr(20 + i)})
	}
	return chord.GetTableResp{Table: rt}
}

func BenchmarkCodecEncodeTable(b *testing.B) {
	var msg transport.Message = benchTable() // box once; the codec is what's measured
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := transport.EncodeTo(buf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
		buf = enc
		b.SetBytes(int64(len(enc)))
	}
}

func BenchmarkCodecDecodeTable(b *testing.B) {
	enc, err := transport.Encode(benchTable())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := transport.AcquireReader(enc)
		m, err := transport.DecodeBorrowed(r)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := m.(chord.GetTableResp); !ok {
			b.Fatalf("decoded %T", m)
		}
		r.Release()
	}
}

// BenchmarkCodecSizeTable measures the counting-mode encoder behind every
// Size() call — it runs once per sent message for bandwidth accounting.
func BenchmarkCodecSizeTable(b *testing.B) {
	msg := benchTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if msg.Size() == 0 {
			b.Fatal("zero size")
		}
	}
}

// BenchmarkChanTransportRPC measures the full serialized round-trip:
// encode → deliver to the callee goroutine → decode → handle → encode →
// deliver back → decode.
func BenchmarkChanTransportRPC(b *testing.B) {
	net := chantransport.New(2, 1)
	defer net.Close()
	resp := benchTable()
	net.Bind(0, func(transport.Addr, transport.Message) (transport.Message, bool) {
		return resp, true
	})
	net.Bind(1, func(transport.Addr, transport.Message) (transport.Message, bool) {
		return nil, false
	})
	var req transport.Message = chord.GetTableReq{IncludeSuccessors: true}
	done := make(chan error, 1)
	// Hoisted so the loop measures the transport round-trip, not the
	// harness's own closure construction.
	cb := func(_ transport.Message, err error) { done <- err }
	call := func() { net.Call(1, 0, req, 5*time.Second, cb) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.After(1, 0, call)
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}
