// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (DESIGN.md §3 maps each to its experiment runner), at
// bench-friendly scale. The full-scale numbers come from cmd/octopus-bench;
// these targets exercise the identical code paths and report the headline
// metric of each experiment as a custom unit.
package octopus

import (
	"testing"
	"time"

	"github.com/octopus-dht/octopus/internal/adversary"
	"github.com/octopus-dht/octopus/internal/anonymity"
	"github.com/octopus-dht/octopus/internal/experiments"
)

func benchSecurityConfig(strategy adversary.Strategy) experiments.SecurityConfig {
	return experiments.SecurityConfig{
		N:           150,
		F:           0.20,
		Strategy:    strategy,
		Duration:    400 * time.Second,
		SampleEvery: 100 * time.Second,
		Seed:        1,
	}
}

func benchAnonConfig(scheme anonymity.Scheme, dummies int) anonymity.Config {
	return anonymity.Config{
		N:          4000,
		F:          0.20,
		Alpha:      0.01,
		Dummies:    dummies,
		WalkLength: 3,
		SuccList:   6,
		Scheme:     scheme,
		Trials:     60,
		PreSimRuns: 600,
		Seed:       1,
	}
}

func BenchmarkTable1TimingAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := adversary.DefaultTimingConfig()
		cfg.N = 100_000
		cfg.SamplePairs = 100
		cfg.Seed = int64(i + 1)
		res := adversary.SimulateTimingAttack(cfg)
		b.ReportMetric(res.ErrorRate*100, "err%")
		b.ReportMetric(res.InfoLeakBits, "leak-bits")
	}
}

func BenchmarkTable2Identification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSecurityConfig(adversary.Strategy{AttackRate: 1, BiasLookups: true})
		cfg.ChurnMean = 60 * time.Minute
		cfg.Seed = int64(i + 1)
		res := experiments.RunSecurity(cfg)
		b.ReportMetric(res.FalsePositiveRate*100, "FP%")
		b.ReportMetric(res.FalseNegativeRate*100, "FN%")
	}
}

func BenchmarkTable3Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultEfficiencyConfig()
		cfg.Lookups = 60
		cfg.WarmUp = 90 * time.Second
		cfg.BandwidthWindow = 3 * time.Minute
		cfg.Seed = int64(i + 1)
		res := experiments.RunOctopusEfficiency(cfg)
		b.ReportMetric(res.MeanLatency.Seconds(), "mean-s")
		b.ReportMetric(res.BandwidthKbps[5*time.Minute], "kbps@5m")
	}
}

func benchDecay(b *testing.B, strategy adversary.Strategy, lookups, dos bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := benchSecurityConfig(strategy)
		if lookups {
			cfg.LookupEvery = time.Minute
		}
		cfg.DoSDefense = dos
		cfg.Seed = int64(i + 1)
		res := experiments.RunSecurity(cfg)
		b.ReportMetric(res.FinalMalicious*100, "final-mal%")
		if lookups {
			b.ReportMetric(float64(res.TotalBiased), "biased")
		}
	}
}

func BenchmarkFig3aLookupBias(b *testing.B) {
	benchDecay(b, adversary.Strategy{AttackRate: 1, BiasLookups: true}, false, false)
}

func BenchmarkFig3bBiasedLookups(b *testing.B) {
	benchDecay(b, adversary.Strategy{AttackRate: 1, BiasLookups: true}, true, false)
}

func BenchmarkFig3cManipulation(b *testing.B) {
	benchDecay(b, adversary.Strategy{
		AttackRate: 1, ManipulateFingers: true, ConsistentPredRate: 0.5}, false, false)
}

func BenchmarkFig4Pollution(b *testing.B) {
	benchDecay(b, adversary.Strategy{
		AttackRate: 1, BiasLookups: true, ManipulateFingers: true,
		ConsistentPredRate: 0.5}, false, false)
}

func BenchmarkFig9SelectiveDoS(b *testing.B) {
	benchDecay(b, adversary.Strategy{AttackRate: 1, SelectiveDrop: true}, true, true)
}

func BenchmarkFig5aInitiatorAnonymity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		b.ReportMetric(res.LeakInitiator, "leakI-bits")
	}
}

func BenchmarkFig5bInitiatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oct := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		nis := anonymity.New(benchAnonConfig(anonymity.SchemeNISAN, 0)).Analyze()
		b.ReportMetric(nis.LeakInitiator/oct.LeakInitiator, "nisan/octopus")
	}
}

func BenchmarkFig5cTargetAnonymity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		b.ReportMetric(res.LeakTarget, "leakT-bits")
	}
}

func BenchmarkFig6TargetComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oct := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		nis := anonymity.New(benchAnonConfig(anonymity.SchemeNISAN, 0)).Analyze()
		b.ReportMetric(nis.LeakTarget/oct.LeakTarget, "nisan/octopus")
	}
}

func BenchmarkFig7aLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultEfficiencyConfig()
		cfg.Lookups = 60
		cfg.WarmUp = 90 * time.Second
		cfg.BandwidthWindow = time.Minute
		cfg.Seed = int64(i + 1)
		res := experiments.RunChordEfficiency(cfg)
		b.ReportMetric(res.MedianLatency.Seconds(), "median-s")
	}
}

func BenchmarkFig7bCAWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSecurityConfig(adversary.Strategy{AttackRate: 1, BiasLookups: true})
		cfg.Seed = int64(i + 1)
		res := experiments.RunSecurity(cfg)
		pts := res.CAWorkloadSeries().Points
		if len(pts) > 0 {
			b.ReportMetric(pts[0].V, "peak-msg/s")
			b.ReportMetric(pts[len(pts)-1].V, "final-msg/s")
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationDummyPlacement compares target-anonymity leak with and
// without dummy queries.
func BenchmarkAblationDummyPlacement(b *testing.B) {
	for _, dummies := range []int{0, 6} {
		b.Run(map[int]string{0: "none", 6: "six"}[dummies], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, dummies)).Analyze()
				b.ReportMetric(res.LeakTarget, "leakT-bits")
			}
		})
	}
}

// BenchmarkAblationPathSplitting quantifies §4.2's argument: a single shared
// path makes every query linkable to the same exit, collapsing the dummy
// defense. Modeled by comparing Octopus (split paths) against NISAN-style
// full linkage.
func BenchmarkAblationPathSplitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		split := anonymity.New(benchAnonConfig(anonymity.SchemeOctopus, 6)).Analyze()
		linked := anonymity.New(benchAnonConfig(anonymity.SchemeNISAN, 6)).Analyze()
		b.ReportMetric(split.LeakTarget, "split-leakT")
		b.ReportMetric(linked.LeakTarget, "linked-leakT")
	}
}
