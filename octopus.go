// Package octopus is a from-scratch Go implementation of "Octopus: A Secure
// and Anonymous DHT Lookup" (Wang, ICDCS 2012): a Chord-based distributed
// hash table whose lookups hide both the initiator and the target from a
// colluding fraction of the network, and whose secret surveillance
// mechanisms identify and evict actively-misbehaving nodes.
//
// This package is the public facade: it builds a complete in-process
// Octopus deployment on the repository's deterministic event simulator and
// exposes a synchronous API for lookups, key/value-style resolution, and
// protocol introspection. The full machinery (anonymous relay paths, random
// walks, dummy queries, surveillance, CA investigations) runs underneath
// exactly as in the paper. The protocol stack itself is transport-agnostic
// (internal/transport): the simulator used here is one backend, the
// concurrent channel transport (internal/transport/chantransport) runs the
// same state machines over real goroutines with every message serialized
// through the binary wire codec, and the socket transport
// (internal/transport/nettransport) runs them across OS processes over TCP
// — see cmd/octopusd and docs/DEPLOYMENT.md for multi-process deployments,
// and README.md for the architecture map.
//
// # Quick start
//
//	net, err := octopus.New(octopus.Defaults(64))
//	if err != nil { ... }
//	net.Warm(2 * time.Minute) // stock anonymization relay pools
//	res, err := net.Lookup(0, []byte("my-key"))
//	fmt.Println(res.Owner, res.Latency)
package octopus

import (
	"errors"
	"fmt"
	"time"

	"github.com/octopus-dht/octopus/internal/chord"
	"github.com/octopus-dht/octopus/internal/core"
	"github.com/octopus-dht/octopus/internal/id"
	"github.com/octopus-dht/octopus/internal/king"
	"github.com/octopus-dht/octopus/internal/simnet"
)

// Config selects the deployment parameters. Zero values fall back to the
// paper's defaults (§5.1).
type Config struct {
	// Nodes is the network size.
	Nodes int
	// Dummies is the number of dummy queries blended into each lookup.
	Dummies int
	// WalkEvery is the relay-selection random-walk period.
	WalkEvery time.Duration
	// SurveilEvery is the period of the secret security checks.
	SurveilEvery time.Duration
	// MeanRTT calibrates the synthetic WAN latency model.
	MeanRTT time.Duration
	// DoSDefense arms the Appendix II dropped-query reporting.
	DoSDefense bool
	// Seed drives all randomness; runs are deterministic per seed.
	Seed int64
}

// Defaults returns the paper's configuration for a network of n nodes.
func Defaults(n int) Config {
	return Config{
		Nodes:   n,
		Dummies: 6,
		MeanRTT: king.DefaultMeanRTT,
		Seed:    1,
	}
}

// Result describes one completed anonymous lookup.
type Result struct {
	// Owner is the ring identifier of the node owning the key.
	Owner string
	// OwnerIndex is the owning node's index in the deployment.
	OwnerIndex int
	// Queries and Dummies count the real and dummy queries sent.
	Queries int
	Dummies int
	// Latency is the lookup's virtual duration.
	Latency time.Duration
}

// Network is a running in-process Octopus deployment.
type Network struct {
	cfg   Config
	inner *core.Network
	sim   *simnet.Simulator
}

// ErrLookup wraps lookup failures surfaced through the facade.
var ErrLookup = errors.New("octopus: lookup failed")

// New builds and starts a deployment: n nodes with CA-issued identities,
// consistent initial routing state, and all protocol timers running.
func New(cfg Config) (*Network, error) {
	if cfg.Nodes < 8 {
		return nil, fmt.Errorf("octopus: need at least 8 nodes, got %d", cfg.Nodes)
	}
	sim := simnet.New(cfg.Seed)
	coreCfg := core.DefaultConfig()
	coreCfg.EstimatedSize = cfg.Nodes
	coreCfg.DoSDefense = cfg.DoSDefense
	if cfg.Dummies > 0 {
		coreCfg.Dummies = cfg.Dummies
	}
	if cfg.WalkEvery > 0 {
		coreCfg.WalkEvery = cfg.WalkEvery
	}
	if cfg.SurveilEvery > 0 {
		coreCfg.SurveilEvery = cfg.SurveilEvery
	}
	meanRTT := cfg.MeanRTT
	if meanRTT <= 0 {
		meanRTT = king.DefaultMeanRTT
	}
	lat := king.NewWith(cfg.Seed, meanRTT, king.DefaultSigma)
	net := simnet.NewNetwork(sim, lat, cfg.Nodes+1) // +1: the CA's address slot
	inner, err := core.BuildNetwork(net, cfg.Nodes, coreCfg)
	if err != nil {
		return nil, err
	}
	return &Network{cfg: cfg, inner: inner, sim: sim}, nil
}

// Size returns the number of nodes.
func (n *Network) Size() int { return len(n.inner.Nodes) }

// Now returns the deployment's virtual time.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// Warm advances virtual time so the relay-selection walks can stock every
// node's anonymization pool. Two minutes suffice with the default walk
// period.
func (n *Network) Warm(d time.Duration) {
	n.sim.Run(n.sim.Now() + d)
}

// Lookup anonymously resolves the owner of an arbitrary byte key from the
// given node, advancing virtual time until the lookup completes.
func (n *Network) Lookup(from int, key []byte) (Result, error) {
	return n.lookup(from, id.FromBytes(key))
}

// LookupID resolves a raw ring position (hex identifiers from NodeID).
func (n *Network) LookupID(from int, ringID string) (Result, error) {
	var raw uint64
	if _, err := fmt.Sscanf(ringID, "%016x", &raw); err != nil {
		return Result{}, fmt.Errorf("octopus: bad ring id %q: %w", ringID, err)
	}
	return n.lookup(from, id.ID(raw))
}

func (n *Network) lookup(from int, key id.ID) (Result, error) {
	if from < 0 || from >= len(n.inner.Nodes) {
		return Result{}, fmt.Errorf("octopus: node index %d out of range", from)
	}
	node := n.inner.Nodes[from]
	var (
		res  Result
		err  error
		done bool
	)
	node.AnonLookup(key, func(owner chord.Peer, stats core.LookupStats, lerr error) {
		done = true
		if lerr != nil {
			err = fmt.Errorf("%w: %v", ErrLookup, lerr)
			return
		}
		res = Result{
			Owner:      owner.ID.String(),
			OwnerIndex: int(owner.Addr),
			Queries:    stats.Queries,
			Dummies:    stats.Dummies,
			Latency:    stats.Latency(),
		}
	})
	deadline := n.sim.Now() + 5*time.Minute
	for !done && n.sim.Now() < deadline {
		n.sim.Run(n.sim.Now() + time.Second)
	}
	if !done {
		return Result{}, fmt.Errorf("%w: no completion before deadline", ErrLookup)
	}
	return res, err
}

// NodeID returns the ring identifier of a node by index.
func (n *Network) NodeID(index int) string {
	if index < 0 || index >= len(n.inner.Nodes) {
		return ""
	}
	return n.inner.Nodes[index].Self().ID.String()
}

// OwnerOf returns the ground-truth owner index for a key (for verification
// in tests and examples; real deployments have no such oracle).
func (n *Network) OwnerOf(key []byte) int {
	return int(n.inner.Ring.Owner(id.FromBytes(key)).Addr)
}

// Stats summarizes one node's protocol activity.
type Stats struct {
	LookupsCompleted uint64
	LookupsFailed    uint64
	QueriesSent      uint64
	DummiesSent      uint64
	WalksCompleted   uint64
	RelayPoolSize    int
	ChecksRun        uint64
	ReportsSent      uint64
}

// NodeStats returns a node's activity counters.
func (n *Network) NodeStats(index int) Stats {
	if index < 0 || index >= len(n.inner.Nodes) {
		return Stats{}
	}
	node := n.inner.Nodes[index]
	s := node.Stats()
	return Stats{
		LookupsCompleted: s.LookupsCompleted,
		LookupsFailed:    s.LookupsFailed,
		QueriesSent:      s.QueriesSent,
		DummiesSent:      s.DummiesSent,
		WalksCompleted:   s.WalksCompleted,
		RelayPoolSize:    node.PoolSize(),
		ChecksRun:        s.ChecksRun,
		ReportsSent:      s.ReportsSent,
	}
}

// CAStats summarizes the certificate authority's casework.
type CAStats struct {
	Reports        uint64
	Investigations uint64
	Revocations    uint64
	FalseAlarms    uint64
}

// CA returns the deployment CA's casework counters.
func (n *Network) CA() CAStats {
	s := n.inner.CA.Stats()
	return CAStats{
		Reports:        s.ReportsReceived,
		Investigations: s.Investigations,
		Revocations:    s.Revocations,
		FalseAlarms:    s.FalseAlarms,
	}
}

// Internal exposes the underlying simulation network for advanced uses
// (the examples use it to install adversaries and inspect protocol state).
func (n *Network) Internal() *core.Network { return n.inner }
