// Command benchgate is the CI benchmark-regression gate. It has two modes:
//
//	benchgate -parse -in bench.txt -out BENCH_<sha>.json
//	    Parse `go test -bench` output into a JSON snapshot. Repeated runs
//	    of one benchmark (-count N) are aggregated: ns/op, B/op and
//	    allocs/op take the MINIMUM across runs (the least-noisy estimate
//	    of the code's true cost), custom units take the mean (they are
//	    deterministic under fixed seeds, so min and mean coincide).
//
//	benchgate -compare -baseline BENCH_baseline.json -current BENCH_<sha>.json
//	    Fail (exit 1) when the current snapshot regresses against the
//	    committed baseline by more than -tolerance (default 0.15):
//
//	      - Micro benchmarks (those reporting no custom units) compare
//	        ns/op as a RATIO to the geometric mean of all micro
//	        benchmarks' ns/op in the same file, so a baseline recorded on
//	        one machine remains meaningful on a differently-clocked CI
//	        runner, and no single noisy benchmark poisons the
//	        normalization. -anchor <name> normalizes by one benchmark
//	        instead; -absolute compares raw ns/op (same-machine runs).
//	      - Experiment benchmarks (those reporting custom units) skip the
//	        ns/op comparison: their wall time is simulation bookkeeping,
//	        not a hot path, and their regression signal is the units.
//	      - B/op and allocs/op are machine-independent and compared
//	        absolutely; only increases beyond -bytes-tolerance (default
//	        0.30) fail. Byte counters get their own, wider tolerance
//	        because the pooled hot paths leave baselines so small (0–2
//	        allocs, tens of bytes) that runtime-version or pool-warmth
//	        jitter of a single allocation is a large relative change.
//	      - every other unit is a headline experiment metric (err%,
//	        leak-bits, …) produced under fixed seeds; a drift beyond
//	        tolerance in EITHER direction means behaviour changed and
//	        fails the gate. -unit-tolerance unit=frac (repeatable)
//	        overrides the tolerance for one named unit everywhere it is
//	        reported — latency headlines can gate tighter than noisy
//	        counters without widening the whole gate. It also applies to
//	        B/op and allocs/op when named explicitly.
//	      - a benchmark present in the baseline but missing from the
//	        current snapshot fails the gate (coverage loss).
//
// GOMAXPROCS suffixes ("-8") are stripped from benchmark names so
// snapshots compare across machines with different core counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated numbers.
type Result struct {
	NsPerOp float64 `json:"ns_per_op"`
	Runs    int     `json:"runs"`
	// Units holds every reported unit except ns/op: B/op, allocs/op, and
	// the experiment benchmarks' custom units.
	Units map[string]float64 `json:"units,omitempty"`
}

// Snapshot is the JSON file format.
type Snapshot struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		parse     = flag.Bool("parse", false, "parse `go test -bench` output into a JSON snapshot")
		compare   = flag.Bool("compare", false, "compare a current snapshot against a baseline")
		in        = flag.String("in", "", "parse: benchmark text input (default stdin)")
		out       = flag.String("out", "", "parse: JSON output path (default stdout)")
		baseline  = flag.String("baseline", "", "compare: baseline snapshot path")
		current   = flag.String("current", "", "compare: current snapshot path")
		tolerance = flag.Float64("tolerance", 0.15, "compare: allowed relative regression")
		bytesTol  = flag.Float64("bytes-tolerance", 0.30, "compare: allowed relative regression for B/op and allocs/op")
		anchor    = flag.String("anchor", "", "compare: normalize ns/op by this one benchmark instead of the micro-benchmark geometric mean")
		absolute  = flag.Bool("absolute", false, "compare: raw ns/op instead of normalized ratios")
	)
	unitTol := unitTolerances{}
	flag.Var(unitTol, "unit-tolerance", "compare: per-unit tolerance override as unit=frac, repeatable (e.g. -unit-tolerance p95-s=0.10)")
	flag.Parse()
	switch {
	case *parse == *compare:
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -parse / -compare is required")
		os.Exit(2)
	case *parse:
		if err := runParse(*in, *out); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	default:
		failures, err := runCompare(*baseline, *current, *tolerance, *bytesTol, unitTol, *anchor, *absolute)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if failures > 0 {
			fmt.Printf("benchgate: FAIL — %d regression(s) beyond %.0f%% tolerance\n", failures, *tolerance*100)
			os.Exit(1)
		}
		fmt.Println("benchgate: PASS")
	}
}

// benchLine matches one benchmark result line:
//
//	BenchmarkName[-8] <iters> <value> <unit> [<value> <unit>]...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// ParseBench reads `go test -bench` text and aggregates it into a Snapshot.
func ParseBench(r io.Reader) (Snapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Snapshot{}, err
	}
	type agg struct {
		ns    []float64
		units map[string][]float64
	}
	byName := make(map[string]*agg)
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			continue
		}
		a := byName[name]
		if a == nil {
			a = &agg{units: make(map[string][]float64)}
			byName[name] = a
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				a.ns = append(a.ns, v)
			} else {
				a.units[unit] = append(a.units[unit], v)
			}
		}
	}
	if len(byName) == 0 {
		return Snapshot{}, fmt.Errorf("no benchmark lines found in input")
	}
	snap := Snapshot{Benchmarks: make(map[string]Result, len(byName))}
	for name, a := range byName {
		res := Result{Runs: len(a.ns), Units: make(map[string]float64)}
		if len(a.ns) > 0 {
			res.NsPerOp = minOf(a.ns)
		}
		for unit, vs := range a.units {
			switch unit {
			case "B/op", "allocs/op":
				res.Units[unit] = minOf(vs)
			default:
				res.Units[unit] = meanOf(vs)
			}
		}
		if len(res.Units) == 0 {
			res.Units = nil
		}
		snap.Benchmarks[name] = res
	}
	return snap, nil
}

func minOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func meanOf(vs []float64) float64 {
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

func runParse(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	snap, err := ParseBench(r)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func loadSnapshot(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return Snapshot{}, fmt.Errorf("%s: empty snapshot", path)
	}
	return s, nil
}

// isMicro reports whether a result is a micro benchmark: it reports no
// units beyond the standard time/alloc/throughput set. Experiment
// benchmarks carry headline custom units and skip the ns/op comparison.
func isMicro(r Result) bool {
	for unit := range r.Units {
		switch unit {
		case "B/op", "allocs/op", "MB/s":
		default:
			return false
		}
	}
	return true
}

// geomeanNs returns the geometric mean of ns/op over the named benchmarks.
func geomeanNs(s Snapshot, names []string) float64 {
	sum, n := 0.0, 0
	for _, name := range names {
		if r, ok := s.Benchmarks[name]; ok && r.NsPerOp > 0 {
			sum += math.Log(r.NsPerOp)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// unitTolerances is the repeatable -unit-tolerance flag: per-unit
// overrides of the gate tolerance, keyed by the unit string exactly as
// the benchmark reports it.
type unitTolerances map[string]float64

func (u unitTolerances) String() string {
	parts := make([]string, 0, len(u))
	for unit, tol := range u {
		parts = append(parts, fmt.Sprintf("%s=%g", unit, tol))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (u unitTolerances) Set(v string) error {
	unit, frac, ok := strings.Cut(v, "=")
	if !ok || unit == "" {
		return fmt.Errorf("want unit=frac, got %q", v)
	}
	tol, err := strconv.ParseFloat(frac, 64)
	if err != nil || tol < 0 {
		return fmt.Errorf("bad tolerance in %q", v)
	}
	u[unit] = tol
	return nil
}

// Compare evaluates current against base and returns the failure messages.
// bytesTolerance applies to B/op and allocs/op; tolerance to everything
// else; unitTol (nil ok) overrides both for individually named units.
// Exported (with ParseBench) so the gate's own tests can inject synthetic
// regressions.
func Compare(base, cur Snapshot, tolerance, bytesTolerance float64, unitTol map[string]float64, anchor string, absolute bool) []string {
	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	names := make([]string, 0, len(base.Benchmarks))
	micro := make([]string, 0, len(base.Benchmarks))
	for name, r := range base.Benchmarks {
		names = append(names, name)
		if _, inCur := cur.Benchmarks[name]; inCur && isMicro(r) {
			micro = append(micro, name)
		}
	}
	sort.Strings(names)
	sort.Strings(micro)

	// The normalization factor per judged benchmark: one anchor benchmark
	// when named, otherwise the geometric mean of the OTHER shared micro
	// benchmarks (leave-one-out — including the judged benchmark in its
	// own normalizer would dilute its regression by n-th-root, silently
	// widening the advertised tolerance).
	normFor := func(name string) (bn, cn float64, kind string, ok bool) {
		if absolute {
			return 1, 1, "ns/op", true
		}
		if anchor != "" {
			b, okB := base.Benchmarks[anchor]
			c, okC := cur.Benchmarks[anchor]
			if okB && okC && b.NsPerOp > 0 && c.NsPerOp > 0 {
				return b.NsPerOp, c.NsPerOp, "ns/op (anchor-normalized)", name != anchor
			}
			return 1, 1, "ns/op", true // anchor unusable: absolute
		}
		others := make([]string, 0, len(micro))
		for _, m := range micro {
			if m != name {
				others = append(others, m)
			}
		}
		bn, cn = geomeanNs(base, others), geomeanNs(cur, others)
		if bn <= 0 || cn <= 0 {
			return 1, 1, "ns/op", true // no peers to normalize by: absolute
		}
		return bn, cn, "ns/op (geomean-normalized)", true
	}

	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fail("%s: present in baseline but missing from current run (coverage loss)", name)
			continue
		}
		// Time, micro benchmarks only. With a single-benchmark anchor,
		// the anchor cannot be judged against itself (its drift is
		// absorbed into every other ratio).
		if bn, cn, kind, judge := normFor(name); judge && isMicro(b) && b.NsPerOp > 0 && c.NsPerOp > 0 {
			bv, cv := b.NsPerOp/bn, c.NsPerOp/cn
			if cv > bv*(1+tolerance) {
				fail("%s: %s regressed %.1f%% (%.4g -> %.4g)", name, kind, (cv/bv-1)*100, bv, cv)
			}
		}
		for unit, bv := range b.Units {
			cv, ok := c.Units[unit]
			if !ok {
				fail("%s: unit %q disappeared from current run", name, unit)
				continue
			}
			switch unit {
			case "MB/s":
				// Redundant with ns/op and machine-dependent; skip.
			case "B/op", "allocs/op":
				tol := bytesTolerance
				if t, ok := unitTol[unit]; ok {
					tol = t
				}
				if cv > bv*(1+tol) {
					fail("%s: %s regressed %.1f%% (%g -> %g), beyond the %.0f%% byte-counter tolerance",
						name, unit, (cv/bv-1)*100, bv, cv, tol*100)
				}
			default:
				// Headline experiment metric under fixed seeds:
				// drift in either direction is a behaviour change.
				tol := tolerance
				if t, ok := unitTol[unit]; ok {
					tol = t
				}
				scale := math.Max(math.Abs(bv), 1e-9)
				if math.Abs(cv-bv)/scale > tol {
					fail("%s: headline unit %q drifted %.1f%% (%g -> %g), beyond its %.0f%% tolerance", name, unit,
						math.Abs(cv-bv)/scale*100, bv, cv, tol*100)
				}
			}
		}
	}
	return failures
}

func runCompare(baselinePath, currentPath string, tolerance, bytesTolerance float64, unitTol map[string]float64, anchor string, absolute bool) (int, error) {
	if baselinePath == "" || currentPath == "" {
		return 0, fmt.Errorf("-compare needs -baseline and -current")
	}
	base, err := loadSnapshot(baselinePath)
	if err != nil {
		return 0, err
	}
	cur, err := loadSnapshot(currentPath)
	if err != nil {
		return 0, err
	}
	failures := Compare(base, cur, tolerance, bytesTolerance, unitTol, anchor, absolute)
	for _, f := range failures {
		fmt.Println("REGRESSION:", f)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("note: %s is new (not in baseline); add it by regenerating BENCH_baseline.json\n", name)
		}
	}
	return len(failures), nil
}
