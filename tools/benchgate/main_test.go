package main

import (
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: github.com/octopus-dht/octopus
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCodecEncodeTable-8 	    1000	      1457 ns/op	 233.29 MB/s	    1152 B/op	       6 allocs/op
BenchmarkCodecEncodeTable-8 	    1000	       654.7 ns/op	 519.34 MB/s	    1152 B/op	       6 allocs/op
BenchmarkCodecSizeTable-8   	    1000	       139.5 ns/op	     192 B/op	       2 allocs/op
BenchmarkCodecSizeTable-8   	    1000	       152.3 ns/op	     192 B/op	       2 allocs/op
BenchmarkChanTransportRPC 	    1000	      9827 ns/op	    2701 B/op	      36 allocs/op
BenchmarkTable1TimingAnalysis 	       1	    790286 ns/op	       100.0 err%	         0 leak-bits
PASS
`

func parseSample(t *testing.T) Snapshot {
	t.Helper()
	snap, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	return snap
}

func TestParseAggregatesAndStripsSuffix(t *testing.T) {
	snap := parseSample(t)
	enc, ok := snap.Benchmarks["BenchmarkCodecEncodeTable"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped; have %v", snap.Benchmarks)
	}
	if enc.NsPerOp != 654.7 {
		t.Errorf("ns/op = %v, want the min across runs (654.7)", enc.NsPerOp)
	}
	if enc.Runs != 2 {
		t.Errorf("runs = %d, want 2", enc.Runs)
	}
	if enc.Units["B/op"] != 1152 || enc.Units["allocs/op"] != 6 {
		t.Errorf("alloc units wrong: %v", enc.Units)
	}
	tbl := snap.Benchmarks["BenchmarkTable1TimingAnalysis"]
	if tbl.Units["err%"] != 100.0 || tbl.Units["leak-bits"] != 0 {
		t.Errorf("custom units wrong: %v", tbl.Units)
	}
	if _, err := ParseBench(strings.NewReader("no benchmarks here")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCompareBaselineAgainstItselfPasses(t *testing.T) {
	snap := parseSample(t)
	if failures := Compare(snap, snap, 0.15, 0.30, nil, "", false); len(failures) != 0 {
		t.Errorf("self-comparison failed the gate: %v", failures)
	}
}

// clone deep-copies a snapshot so a test can perturb one benchmark.
func clone(s Snapshot) Snapshot {
	out := Snapshot{Benchmarks: make(map[string]Result, len(s.Benchmarks))}
	for name, r := range s.Benchmarks {
		cp := r
		if r.Units != nil {
			cp.Units = make(map[string]float64, len(r.Units))
			for u, v := range r.Units {
				cp.Units[u] = v
			}
		}
		out.Benchmarks[name] = cp
	}
	return out
}

// TestInjectedTimeRegressionFails is the gate's acceptance check: a
// synthetic >15% ns/op slowdown on one benchmark must fail the comparison,
// in both anchor-normalized and absolute modes.
func TestInjectedTimeRegressionFails(t *testing.T) {
	base := parseSample(t)
	cur := clone(base)
	r := cur.Benchmarks["BenchmarkChanTransportRPC"]
	r.NsPerOp *= 1.30 // 30% slower — well beyond the 15% tolerance
	cur.Benchmarks["BenchmarkChanTransportRPC"] = r

	for _, mode := range []struct {
		anchor   string
		absolute bool
	}{
		{"", false},                        // geomean-normalized (the CI default)
		{"BenchmarkCodecSizeTable", false}, // single-anchor normalization
		{"", true},                         // absolute
	} {
		failures := Compare(base, cur, 0.15, 0.30, nil, mode.anchor, mode.absolute)
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkChanTransportRPC") {
			t.Errorf("anchor=%q absolute=%v: injected 30%% regression not caught exactly once: %v",
				mode.anchor, mode.absolute, failures)
		}
	}

	// A 10% slowdown stays inside the tolerance.
	mild := clone(base)
	r = mild.Benchmarks["BenchmarkChanTransportRPC"]
	r.NsPerOp *= 1.10
	mild.Benchmarks["BenchmarkChanTransportRPC"] = r
	if failures := Compare(base, mild, 0.15, 0.30, nil, "", false); len(failures) != 0 {
		t.Errorf("10%% drift failed a 15%% gate: %v", failures)
	}

	// Leave-one-out normalization: an 18% single-benchmark regression is
	// beyond the 15% tolerance and must fail — with the judged benchmark
	// included in its own geomean it would be diluted below threshold.
	edge := clone(base)
	r = edge.Benchmarks["BenchmarkChanTransportRPC"]
	r.NsPerOp *= 1.18
	edge.Benchmarks["BenchmarkChanTransportRPC"] = r
	failures := Compare(base, edge, 0.15, 0.30, nil, "", false)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkChanTransportRPC") {
		t.Errorf("18%% regression slipped through the 15%% gate (geomean dilution): %v", failures)
	}
}

// TestNormalizationAbsorbsMachineSpeed pins the property that makes a
// committed baseline portable: a uniformly 2x-slower machine (every ns/op
// doubled) does not fail the geomean-normalized gate, but would fail an
// absolute one.
func TestNormalizationAbsorbsMachineSpeed(t *testing.T) {
	base := parseSample(t)
	slow := clone(base)
	for name, r := range slow.Benchmarks {
		r.NsPerOp *= 2
		slow.Benchmarks[name] = r
	}
	if failures := Compare(base, slow, 0.15, 0.30, nil, "", false); len(failures) != 0 {
		t.Errorf("uniform slowdown failed the normalized gate: %v", failures)
	}
	if failures := Compare(base, slow, 0.15, 0.30, nil, "", true); len(failures) == 0 {
		t.Error("uniform slowdown passed the absolute gate (expected failures)")
	}
}

// TestHeadlineUnitDriftFails: a deterministic experiment metric moving
// beyond tolerance in either direction is a behaviour change.
func TestHeadlineUnitDriftFails(t *testing.T) {
	base := parseSample(t)
	cur := clone(base)
	r := cur.Benchmarks["BenchmarkTable1TimingAnalysis"]
	r.Units["err%"] = 70 // was 100: a 30% drop
	cur.Benchmarks["BenchmarkTable1TimingAnalysis"] = r
	failures := Compare(base, cur, 0.15, 0.30, nil, "", false)
	if len(failures) != 1 || !strings.Contains(failures[0], "err%") {
		t.Errorf("headline drift not caught exactly once: %v", failures)
	}
}

// TestMissingBenchmarkFails: silently dropping a benchmark from the suite
// must not pass the gate.
func TestMissingBenchmarkFails(t *testing.T) {
	base := parseSample(t)
	cur := clone(base)
	delete(cur.Benchmarks, "BenchmarkCodecEncodeTable")
	failures := Compare(base, cur, 0.15, 0.30, nil, "", false)
	if len(failures) != 1 || !strings.Contains(failures[0], "coverage loss") {
		t.Errorf("missing benchmark not caught: %v", failures)
	}
}

// TestAllocRegressionFails: B/op is machine-independent, so any increase
// beyond the byte-counter tolerance fails even on a differently-clocked
// runner.
func TestAllocRegressionFails(t *testing.T) {
	base := parseSample(t)
	cur := clone(base)
	r := cur.Benchmarks["BenchmarkCodecEncodeTable"]
	r.Units["B/op"] = r.Units["B/op"] * 1.5
	cur.Benchmarks["BenchmarkCodecEncodeTable"] = r
	failures := Compare(base, cur, 0.15, 0.30, nil, "", false)
	if len(failures) != 1 || !strings.Contains(failures[0], "B/op") {
		t.Errorf("alloc regression not caught: %v", failures)
	}
}

// TestBytesToleranceIsSeparate: byte counters are judged against
// -bytes-tolerance, not -tolerance. A 25% allocs/op increase sits between
// the two defaults (15% and 30%), so it must pass the default gate but
// fail when the byte tolerance is tightened to match the time tolerance.
func TestBytesToleranceIsSeparate(t *testing.T) {
	base := parseSample(t)
	cur := clone(base)
	r := cur.Benchmarks["BenchmarkChanTransportRPC"]
	r.Units["allocs/op"] = r.Units["allocs/op"] * 1.25
	cur.Benchmarks["BenchmarkChanTransportRPC"] = r
	if failures := Compare(base, cur, 0.15, 0.30, nil, "", false); len(failures) != 0 {
		t.Errorf("25%% allocs/op increase failed the 30%% byte gate: %v", failures)
	}
	failures := Compare(base, cur, 0.15, 0.15, nil, "", false)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("25%% allocs/op increase not caught by a 15%% byte gate: %v", failures)
	}

	// A zero baseline (the pooled encode path) stays strict under any
	// tolerance: 0 allocs regressing to 1 is always a pooling bug.
	zero := clone(base)
	r = zero.Benchmarks["BenchmarkCodecSizeTable"]
	r.Units["allocs/op"] = 0
	zero.Benchmarks["BenchmarkCodecSizeTable"] = r
	leaked := clone(zero)
	r = leaked.Benchmarks["BenchmarkCodecSizeTable"]
	r.Units["allocs/op"] = 1
	leaked.Benchmarks["BenchmarkCodecSizeTable"] = r
	failures = Compare(zero, leaked, 0.15, 0.30, nil, "", false)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("0 -> 1 allocs/op not caught: %v", failures)
	}
}

// TestPerUnitTolerance pins the -unit-tolerance override: a named unit
// gates at its own tolerance while everything else keeps the defaults.
func TestPerUnitTolerance(t *testing.T) {
	base := parseSample(t)
	cur := clone(base)
	r := cur.Benchmarks["BenchmarkTable1TimingAnalysis"]
	r.Units["err%"] *= 1.12
	cur.Benchmarks["BenchmarkTable1TimingAnalysis"] = r

	// 12% drift passes the default 15% gate...
	if failures := Compare(base, cur, 0.15, 0.30, nil, "", false); len(failures) != 0 {
		t.Errorf("12%% err%% drift failed the default gate: %v", failures)
	}
	// ...but fails once that headline unit is tightened to 10%.
	tight := map[string]float64{"err%": 0.10}
	failures := Compare(base, cur, 0.15, 0.30, tight, "", false)
	if len(failures) != 1 || !strings.Contains(failures[0], "err%") {
		t.Errorf("12%% err%% drift not caught by a 10%% unit gate: %v", failures)
	}
	// Tightening one unit must not loosen or trip any other unit.
	other := map[string]float64{"leak-bits": 0.50}
	if failures := Compare(base, cur, 0.15, 0.30, other, "", false); len(failures) != 0 {
		t.Errorf("unrelated unit override tripped the gate: %v", failures)
	}
}

// TestUnitToleranceFlagParsing pins the unit=frac flag syntax.
func TestUnitToleranceFlagParsing(t *testing.T) {
	u := unitTolerances{}
	if err := u.Set("p95-s=0.1"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := u.Set("allocs/op=0.05"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if u["p95-s"] != 0.1 || u["allocs/op"] != 0.05 {
		t.Errorf("parsed map = %v", u)
	}
	for _, bad := range []string{"p95-s", "=0.1", "x=", "x=nope", "x=-1"} {
		if err := u.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if got := u.String(); got != "allocs/op=0.05,p95-s=0.1" {
		t.Errorf("String() = %q", got)
	}
}
