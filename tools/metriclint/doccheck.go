package main

// DEPLOYMENT.md's "Metric catalog" table claims to mirror
// internal/obs.Catalog. This file makes that claim mechanical: the table
// is parsed and diffed against the catalog — a metric missing from the
// doc, a stale row for a metric that no longer exists, or a row whose
// type or meaning disagrees with the registered definition all fail CI.

import (
	"fmt"
	"regexp"
	"strings"

	"github.com/octopus-dht/octopus/internal/obs"
)

// docRowRe matches one catalog-table row: | `name` | type | Meaning. |
var docRowRe = regexp.MustCompile("^\\|\\s*`([a-z0-9_]+)`\\s*\\|\\s*([a-z]+)\\s*\\|\\s*(.*?)\\s*\\|\\s*$")

// catalogHeading introduces the mirrored table in the deployment doc.
const catalogHeading = "### Metric catalog"

// diffCatalogDoc compares the doc's metric table against the live
// catalog and returns one complaint per drift.
func diffCatalogDoc(defs []obs.MetricDef, doc string) []string {
	rows := map[string]obs.MetricDef{}
	var order []string
	inSection := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, catalogHeading) {
			inSection = true
			continue
		}
		if inSection && strings.HasPrefix(line, "#") {
			break // next heading ends the section
		}
		if !inSection {
			continue
		}
		m := docRowRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// Backticks are doc styling around label names; the comparison is
		// about content.
		help := strings.ReplaceAll(m[3], "`", "")
		rows[m[1]] = obs.MetricDef{Name: m[1], Type: m[2], Help: help}
		order = append(order, m[1])
	}
	if !inSection {
		return []string{fmt.Sprintf("deployment doc has no %q section", catalogHeading)}
	}

	var drift []string
	seen := map[string]bool{}
	for _, def := range defs {
		seen[def.Name] = true
		row, ok := rows[def.Name]
		if !ok {
			drift = append(drift, fmt.Sprintf("metric %s is registered in internal/obs/catalog.go but missing from the doc's catalog table", def.Name))
			continue
		}
		if row.Type != def.Type {
			drift = append(drift, fmt.Sprintf("metric %s: doc says type %q, catalog says %q", def.Name, row.Type, def.Type))
		}
		if row.Help != def.Help {
			drift = append(drift, fmt.Sprintf("metric %s: doc meaning %q differs from catalog help %q", def.Name, row.Help, def.Help))
		}
	}
	for _, name := range order {
		if !seen[name] {
			drift = append(drift, fmt.Sprintf("doc table lists %s, which is not registered in internal/obs/catalog.go", name))
		}
	}
	return drift
}
