// Command metriclint keeps the metric catalog honest. It fails CI when
//
//   - the catalog itself is invalid (duplicate names, naming-convention
//     violations — octopus_ prefix, snake_case, counters end in _total,
//     histograms carry a unit suffix), or
//   - any non-test Go file emits a metric name that is not registered in
//     internal/obs.Catalog. Unregistered names would render without HELP
//     text, dodge DEPLOYMENT.md's catalog table, and drift from the
//     naming conventions unreviewed.
//
// It also diffs the catalog against DEPLOYMENT.md's "Metric catalog"
// table (doccheck.go), so the operator-facing table cannot drift from
// the registered definitions.
//
// Usage:
//
//	go run ./tools/metriclint [-doc docs/DEPLOYMENT.md] [dir ...]   (default: .)
//
// Detection is syntactic but precise: files are parsed with go/parser and
// only whole string literals matching ^octopus_[a-z0-9_]+$ are treated as
// metric names, so prose mentioning a metric or a longer literal merely
// containing one is never flagged. _test.go files are skipped — tests
// deliberately use unregistered names to exercise validation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"github.com/octopus-dht/octopus/internal/obs"
)

var metricNameRe = regexp.MustCompile(`^octopus_[a-z0-9_]+$`)

func main() {
	docPath := flag.String("doc", "docs/DEPLOYMENT.md", "deployment doc whose metric-catalog table must mirror internal/obs.Catalog (empty to skip)")
	flag.Parse()

	if err := obs.ValidateCatalog(); err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: catalog invalid: %v\n", err)
		os.Exit(1)
	}

	if *docPath != "" {
		doc, err := os.ReadFile(*docPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(1)
		}
		if drift := diffCatalogDoc(obs.Catalog, string(doc)); len(drift) > 0 {
			for _, d := range drift {
				fmt.Fprintf(os.Stderr, "%s: %s\n", *docPath, d)
			}
			fmt.Fprintf(os.Stderr, "metriclint: %d catalog/doc drift(s); reconcile the table with internal/obs/catalog.go\n", len(drift))
			os.Exit(1)
		}
	}

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var files []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == ".git" || d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: walk %s: %v\n", dir, err)
			os.Exit(1)
		}
	}

	bad := 0
	for _, path := range files {
		for _, hit := range lintFile(path) {
			fmt.Fprintln(os.Stderr, hit)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d unregistered metric name(s); register them in internal/obs/catalog.go\n", bad)
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d files OK, catalog holds %d metrics\n", len(files), len(obs.Catalog))
}

// lintFile returns one formatted complaint per string literal in the file
// that looks like a metric name but is missing from the catalog.
func lintFile(path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse: %v", path, err)}
	}
	var hits []string
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil || !metricNameRe.MatchString(s) {
			return true
		}
		if _, ok := obs.LookupMetric(s); !ok {
			pos := fset.Position(lit.Pos())
			hits = append(hits, fmt.Sprintf("%s:%d: metric %q not registered in internal/obs catalog", pos.Filename, pos.Line, s))
		}
		return true
	})
	return hits
}
