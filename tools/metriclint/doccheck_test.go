package main

import (
	"os"
	"strings"
	"testing"

	"github.com/octopus-dht/octopus/internal/obs"
)

var testDefs = []obs.MetricDef{
	{Name: "octopus_a_total", Type: "counter", Help: "Counts a."},
	{Name: "octopus_b", Type: "gauge", Help: "Measures b."},
}

const inSyncDoc = `## Monitoring

### Metric catalog

| Metric | Type | Meaning |
|---|---|---|
| ` + "`octopus_a_total`" + ` | counter | Counts a. |
| ` + "`octopus_b`" + ` | gauge | Measures b. |

### Next section
`

func TestDocInSync(t *testing.T) {
	if drift := diffCatalogDoc(testDefs, inSyncDoc); len(drift) != 0 {
		t.Fatalf("in-sync doc produced drift: %v", drift)
	}
}

func TestDocMissingMetric(t *testing.T) {
	doc := strings.Replace(inSyncDoc, "| `octopus_b` | gauge | Measures b. |\n", "", 1)
	drift := diffCatalogDoc(testDefs, doc)
	if len(drift) != 1 || !strings.Contains(drift[0], "octopus_b is registered") {
		t.Fatalf("drift = %v, want missing-row complaint for octopus_b", drift)
	}
}

func TestDocStaleRow(t *testing.T) {
	doc := strings.Replace(inSyncDoc, "### Next section",
		"| `octopus_gone_total` | counter | Removed last release. |\n\n### Next section", 1)
	drift := diffCatalogDoc(testDefs, doc)
	if len(drift) != 1 || !strings.Contains(drift[0], "octopus_gone_total, which is not registered") {
		t.Fatalf("drift = %v, want stale-row complaint", drift)
	}
}

func TestDocTypeAndHelpDrift(t *testing.T) {
	doc := strings.Replace(inSyncDoc, "| `octopus_b` | gauge | Measures b. |",
		"| `octopus_b` | counter | Measures c. |", 1)
	drift := diffCatalogDoc(testDefs, doc)
	if len(drift) != 2 {
		t.Fatalf("drift = %v, want type AND help complaints", drift)
	}
}

func TestDocSectionMissing(t *testing.T) {
	drift := diffCatalogDoc(testDefs, "## Monitoring\n\nno table here\n")
	if len(drift) != 1 || !strings.Contains(drift[0], "no") {
		t.Fatalf("drift = %v, want missing-section complaint", drift)
	}
}

// TestRealDeploymentDocInSync pins the actual repo state: the shipped
// DEPLOYMENT.md table must mirror the shipped catalog exactly.
func TestRealDeploymentDocInSync(t *testing.T) {
	doc, err := os.ReadFile("../../docs/DEPLOYMENT.md")
	if err != nil {
		t.Fatalf("reading deployment doc: %v", err)
	}
	if drift := diffCatalogDoc(obs.Catalog, string(doc)); len(drift) != 0 {
		t.Fatalf("DEPLOYMENT.md catalog table has drifted:\n%s", strings.Join(drift, "\n"))
	}
}
