// Command mdlinkcheck verifies that relative links in Markdown files
// resolve to files or directories that actually exist, so documentation
// cannot rot silently as the tree moves. It is wired into CI over README.md
// and docs/.
//
//	go run ./tools/mdlinkcheck README.md docs
//
// Arguments are files or directories (directories are scanned recursively
// for *.md). External links (http/https/mailto) are not fetched — CI runs
// offline. Fragments are validated against the target document's real
// headings using GitHub's anchor-slug rules (anchors.go): a pure #anchor
// must name a heading in the same file, and file.md#anchor must name one
// in the linked file.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links [text](target). Images use the same
// syntax with a leading !, which the expression also captures.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"."}
	}
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			fail("stat %s: %v", a, err)
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fail("walk %s: %v", a, err)
		}
	}

	broken := 0
	checked := 0
	cache := anchorCache{}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			fail("read %s: %v", file, err)
		}
		dir := filepath.Dir(file)
		for lineNo, line := range strings.Split(string(raw), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skippable(target) {
					continue
				}
				frag := ""
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target, frag = target[:i], target[i+1:]
				}
				checked++
				resolved := file // pure #fragment: same document
				if target != "" {
					resolved = filepath.Join(dir, target)
					if _, err := os.Stat(resolved); err != nil {
						broken++
						fmt.Fprintf(os.Stderr, "%s:%d: broken link %q\n", file, lineNo+1, m[1])
						continue
					}
				}
				if frag == "" || !strings.HasSuffix(resolved, ".md") {
					continue
				}
				if set := cache.anchors(resolved); !set[frag] {
					broken++
					fmt.Fprintf(os.Stderr, "%s:%d: link %q names no heading in %s\n", file, lineNo+1, m[1], resolved)
				}
			}
		}
	}
	fmt.Printf("mdlinkcheck: %d files, %d relative links checked, %d broken\n",
		len(files), checked, broken)
	if broken > 0 {
		os.Exit(1)
	}
}

func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mdlinkcheck: "+format+"\n", args...)
	os.Exit(1)
}
