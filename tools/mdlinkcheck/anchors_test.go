package main

import "testing"

func TestSlugify(t *testing.T) {
	cases := []struct{ heading, want string }{
		{"Monitoring", "monitoring"},
		{"Serving client traffic", "serving-client-traffic"},
		{"4. Routing-layer messages (`0x01xx`)", "4-routing-layer-messages-0x01xx"},
		{"3.1 RPC correlation and timeouts", "31-rpc-correlation-and-timeouts"},
		{"What's next?", "whats-next"},
		{"snake_case stays", "snake_case-stays"},
		{"[linked](other.md) heading", "linked-heading"},
	}
	for _, c := range cases {
		if got := slugify(c.heading); got != c.want {
			t.Errorf("slugify(%q) = %q, want %q", c.heading, got, c.want)
		}
	}
}

func TestExtractAnchors(t *testing.T) {
	doc := "# Title\n\n## Setup\n\n```sh\n# not a heading\n```\n\n## Setup\n\ntext\n"
	set := extractAnchors(doc)
	for _, want := range []string{"title", "setup", "setup-1"} {
		if !set[want] {
			t.Errorf("anchor %q missing from %v", want, set)
		}
	}
	if set["not-a-heading"] {
		t.Error("heading inside code fence must not produce an anchor")
	}
	if len(set) != 3 {
		t.Errorf("got %d anchors %v, want 3", len(set), set)
	}
}
