package main

// Anchor validation: a link's #fragment must name a real heading in the
// target document, computed with GitHub's slug rules (lowercase, drop
// punctuation, spaces to hyphens, -N suffixes for duplicates). Both pure
// same-document links (#monitoring) and cross-file fragments
// (DEPLOYMENT.md#monitoring) are checked.

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"unicode"
)

var (
	headingRe  = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*$`)
	fenceRe    = regexp.MustCompile("^\\s*(```|~~~)")
	linkTextRe = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)
)

// anchorSet holds the valid fragment slugs of one document.
type anchorSet map[string]bool

// anchorCache memoizes per-file heading extraction across many links.
type anchorCache map[string]anchorSet

// anchors returns the slug set for the Markdown file at path, or nil if
// it cannot be read.
func (c anchorCache) anchors(path string) anchorSet {
	if set, ok := c[path]; ok {
		return set
	}
	raw, err := os.ReadFile(path)
	var set anchorSet
	if err == nil {
		set = extractAnchors(string(raw))
	}
	c[path] = set
	return set
}

// extractAnchors computes the GitHub anchor slugs for every heading in
// the document, skipping fenced code blocks (a shell comment inside a
// fence is not a heading).
func extractAnchors(doc string) anchorSet {
	set := anchorSet{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if fenceRe.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[2])
		if n := counts[slug]; n > 0 {
			set[slug+"-"+strconv.Itoa(n)] = true
		} else {
			set[slug] = true
		}
		counts[slug]++
	}
	return set
}

// slugify applies GitHub's heading-to-anchor transformation.
func slugify(heading string) string {
	h := linkTextRe.ReplaceAllString(heading, "$1") // [text](url) renders as text
	h = strings.ReplaceAll(h, "`", "")
	h = strings.ToLower(h)
	var b strings.Builder
	for _, r := range h {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
