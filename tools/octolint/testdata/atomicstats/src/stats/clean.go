package stats

import "sync/atomic"

// TypedCounters uses the typed wrappers: mixing access modes is
// impossible by construction.
type TypedCounters struct {
	hits atomic.Uint64
}

// Inc increments.
func (c *TypedCounters) Inc() { c.hits.Add(1) }

// Snapshot reads.
func (c *TypedCounters) Snapshot() uint64 { return c.hits.Load() }

// Plain never touches sync/atomic, so plain access is fine.
type Plain struct {
	n uint64
}

// Bump increments under whatever lock the caller holds.
func (p *Plain) Bump() { p.n++ }
