package stats

import "sync/atomic"

// Counters mixes atomic increments with a plain read: a data race.
type Counters struct {
	hits uint64
}

// Inc is the hot-path increment.
func (c *Counters) Inc() {
	atomic.AddUint64(&c.hits, 1)
}

// Snapshot reads the counter without synchronization.
func (c *Counters) Snapshot() uint64 {
	return c.hits // want "plain access of field hits"
}

// Clear stores without synchronization.
func (c *Counters) Clear() {
	c.hits = 0 // want "plain access of field hits"
}
