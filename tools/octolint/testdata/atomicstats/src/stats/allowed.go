package stats

import "sync/atomic"

// Gauge is atomically updated after publication.
type Gauge struct {
	val int64
}

// Set stores atomically.
func (g *Gauge) Set(v int64) { atomic.StoreInt64(&g.val, v) }

// Reset is called only while the collector is quiesced.
func (g *Gauge) Reset() {
	//octolint:allow atomicstats collector is quiesced; no concurrent readers exist
	g.val = 0
}
