package core

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"internal/chord"
	"internal/obs"
	"internal/transport"
)

// BadAttr records an endpoint under a key redaction does not scrub.
func BadAttr(addr transport.Addr) obs.Attr {
	return obs.A("peer_addr", strconv.Itoa(int(addr))) // want "not in internal/obs's sensitive-key set"
}

// BadAttrLiteral builds the attribute directly; same leak.
func BadAttrLiteral(p chord.Peer) obs.Attr {
	return obs.Attr{Key: "owner", Value: strconv.FormatUint(uint64(p.ID), 10)} // want "not in internal/obs's sensitive-key set"
}

// BadKey cannot be proven scrubbed.
func BadKey(key string, addr transport.Addr) obs.Attr {
	return obs.A(key, strconv.Itoa(int(addr))) // want "non-constant key"
}

// BadLog prints an endpoint to the process log.
func BadLog(addr transport.Addr) {
	log.Printf("serving %d", addr) // want "printed to a process log"
}

// BadPrint writes an identity to stderr.
func BadPrint(p chord.Peer) {
	fmt.Fprintf(os.Stderr, "peer %v\n", p) // want "printed to a process log"
}
