package core

import (
	"fmt"
	"strconv"

	"internal/chord"
	"internal/obs"
	"internal/transport"
)

// GoodAttr records the endpoint under a sensitive key: RedactAnonymous
// scrubs it before export.
func GoodAttr(addr transport.Addr) obs.Attr {
	return obs.A("from", strconv.Itoa(int(addr)))
}

// GoodTarget uses the exit-hop key from the sensitive set.
func GoodTarget(p chord.Peer) obs.Attr {
	return obs.A("target", strconv.FormatUint(uint64(p.ID), 10))
}

// Describe builds a string without exporting it; fmt.Sprintf is not a
// sink.
func Describe(addr transport.Addr) string {
	return fmt.Sprintf("addr=%d", addr)
}

// PlainAttr carries no identity-typed value.
func PlainAttr(hops int) obs.Attr {
	return obs.A("hops", strconv.Itoa(hops))
}
