package core

import (
	"log"

	"internal/transport"
)

// FatalStartup reports a fatal misconfiguration before the ring exists.
func FatalStartup(addr transport.Addr) {
	//octolint:allow anonleak fatal startup diagnostic precedes any protocol traffic
	log.Fatalf("cannot bind %d", addr)
}
