// Package obs is a fixture stub of the observability seam.
package obs

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// A builds an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is a trace span stub.
type Span struct {
	Name  string
	Attrs []Attr
}
