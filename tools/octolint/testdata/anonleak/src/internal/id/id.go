// Package id is a fixture stub of the identifier space.
package id

// ID is a ring identifier.
type ID uint64
