// Package chord is a fixture stub of the routing peer record.
package chord

import (
	"internal/id"
	"internal/transport"
)

// Peer binds a ring identifier to its endpoint.
type Peer struct {
	ID   id.ID
	Addr transport.Addr
}
