// Package transport is a fixture stub of the transport address space.
package transport

// Addr identifies a transport endpoint.
type Addr int32
