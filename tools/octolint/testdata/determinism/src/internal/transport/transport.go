// Package transport is a fixture stub of the repo's wire codec surface:
// just enough for determinism's Writer-method sink detection.
package transport

// Writer is the codec writer stub.
type Writer struct{}

// U64 writes v.
func (w *Writer) U64(v uint64) {}
