package core

import "time"

// Test files drive wall-clock transports deliberately; determinism is
// exempt here and nothing below may be reported.
func helperNow() time.Time { return time.Now() }
