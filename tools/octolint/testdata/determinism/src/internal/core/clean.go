package core

import (
	"math/rand"
	"sort"

	"internal/transport"
)

// SeededDraw derives randomness from the run seed: deterministic replay.
func SeededDraw(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// EncodeSorted is the sanctioned collect-then-sort pattern: the map's
// iteration order never reaches the encoder.
func (m Table) EncodeSorted(w *transport.Writer) {
	keys := make([]uint64, 0, len(m.Entries))
	for k := range m.Entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		w.U64(k)
	}
}
