package core

import "time"

// StartupStamp is operator-facing banner output, not protocol state.
func StartupStamp() time.Time {
	//octolint:allow determinism operator-facing banner, not protocol state
	return time.Now()
}
