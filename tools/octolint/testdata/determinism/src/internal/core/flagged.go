package core

import (
	"math/rand"
	"time"

	"internal/transport"
)

// Clock reads the wall clock where the virtual clock must rule.
func Clock() time.Time {
	return time.Now() // want "time.Now in a seeded package"
}

// GlobalDraw uses the process-wide entropy-seeded source.
func GlobalDraw(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn draws from the process-wide entropy-seeded source"
}

// TimeSeeded seeds a source from the clock: nondeterministic AND
// recoverable by an attacker who can bound the start time.
func TimeSeeded() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want "RNG seeded from the wall clock" "time.Now in a seeded package"
	return rand.New(src)
}

// Table is a map-backed structure with a wire encoding.
type Table struct {
	Entries map[uint64]uint64
}

// EncodePayload writes the table in map order: different bytes every run.
func (m Table) EncodePayload(w *transport.Writer) {
	for k := range m.Entries { // want "map iteration in a function that feeds encoding"
		w.U64(k)
	}
}
