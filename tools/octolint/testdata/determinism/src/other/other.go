// Package other is outside the seeded set: wall-clock reads are fine,
// but a time-seeded RNG is wrong in every package.
package other

import (
	"math/rand"
	"time"
)

// Now is fine outside the seeded packages.
func Now() time.Time { return time.Now() }

// TimeSeeded is wrong everywhere: a bounded start time makes the stream
// recoverable.
func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "RNG seeded from the wall clock" "RNG seeded from the wall clock"
}
