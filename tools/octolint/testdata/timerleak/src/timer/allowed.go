package timer

import "time"

// Shutdown tolerates its bounded leak; the pragma records why.
func Shutdown(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		//octolint:allow timerleak fires every 100ms so at most one timer is ever pending
		case <-time.After(100 * time.Millisecond):
		}
	}
}
