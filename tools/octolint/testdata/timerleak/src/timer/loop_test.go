package timer

import (
	"testing"
	"time"
)

// TestPoll leaks a timer per poll: timerleak flags test files too, since
// polling test loops are where the class kept reappearing.
func TestPoll(t *testing.T) {
	ch := make(chan int)
	for i := 0; i < 3; i++ {
		select {
		case <-ch:
		case <-time.After(time.Second): // want "time.After inside a loop"
			t.Fatal("timeout")
		}
	}
}
