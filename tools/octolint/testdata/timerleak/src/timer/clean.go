package timer

import "time"

// Once is a single-shot timeout outside any loop: fine.
func Once(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	case <-time.After(time.Second):
		return 0, false
	}
}

// Hoisted reuses one timer across iterations: the sanctioned pattern.
func Hoisted(ch chan int, n int) int {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	got := 0
	for i := 0; i < n; i++ {
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(time.Second)
		select {
		case <-ch:
			got++
		case <-t.C:
		}
	}
	return got
}
