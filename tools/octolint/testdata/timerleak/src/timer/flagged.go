package timer

import "time"

// Wait polls with a fresh timer every iteration: each one leaks until it
// fires.
func Wait(ch chan int) int {
	for {
		select {
		case v := <-ch:
			return v
		case <-time.After(time.Second): // want "time.After inside a loop"
			continue
		}
	}
}

// Drain leaks one timer per channel.
func Drain(chans []chan int) {
	for _, c := range chans {
		select {
		case <-c:
		case <-time.After(time.Millisecond): // want "time.After inside a loop"
		}
	}
}
