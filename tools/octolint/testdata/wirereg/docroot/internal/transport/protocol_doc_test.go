package transport_test

// Fixture copy of the size-pinning table: wirereg parses the case
// literals out of this file; it is never compiled (testdata is invisible
// to the go tool).

var pinnedFixture = []struct {
	name string
	m    any
	size int
}{
	{"Ping", wire.Ping{}, 2},
	{"Mispinned", wire.Mispinned{}, 9},
}
