// Package transport is a fixture stub of the repo's wire codec registry.
package transport

// Wire is the codec interface stub.
type Wire interface {
	WireType() uint16
	EncodePayload(w *Writer)
}

// Writer is the codec writer stub.
type Writer struct{}

// U64 writes v.
func (w *Writer) U64(v uint64) {}

// Reader is the codec reader stub.
type Reader struct{}

// U64 reads a u64.
func (r *Reader) U64() uint64 { return 0 }

// RegisterType registers a decoder stub.
func RegisterType(code uint16, dec func(r *Reader) Wire) {}

// MarkBorrowSafe marks a registered type borrow-safe.
func MarkBorrowSafe(code uint16) {}
