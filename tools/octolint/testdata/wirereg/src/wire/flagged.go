package wire

import "internal/transport"

// Ping is documented, registered, and pinned: the fully clean case.
type Ping struct{}

// WireType implements transport.Wire.
func (Ping) WireType() uint16 { return 0x0101 }

// EncodePayload implements transport.Wire.
func (Ping) EncodePayload(w *transport.Writer) {}

// Rogue is registered but missing from the fixture PROTOCOL.md.
type Rogue struct{}

// WireType implements transport.Wire.
func (Rogue) WireType() uint16 { return 0x0901 }

// EncodePayload implements transport.Wire.
func (Rogue) EncodePayload(w *transport.Writer) {}

// Drifted is named Renamed in the doc: spec drift.
type Drifted struct{}

// WireType implements transport.Wire.
func (Drifted) WireType() uint16 { return 0x0501 } // want "but the implementing type is"

// EncodePayload implements transport.Wire.
func (Drifted) EncodePayload(w *transport.Writer) {}

// Orphan claims a code nothing registers: its frames cannot decode.
type Orphan struct{}

// WireType implements transport.Wire.
func (Orphan) WireType() uint16 { return 0x0404 } // want "never registers a decoder"

// EncodePayload implements transport.Wire.
func (Orphan) EncodePayload(w *transport.Writer) {}

// Unpinned has a documented fixed size with no TestProtocolDocFixedSizes
// case.
type Unpinned struct{}

// WireType implements transport.Wire.
func (Unpinned) WireType() uint16 { return 0x0601 } // want "no case for it"

// EncodePayload implements transport.Wire.
func (Unpinned) EncodePayload(w *transport.Writer) {}

// Mispinned is pinned at a size that disagrees with the doc.
type Mispinned struct{}

// WireType implements transport.Wire.
func (Mispinned) WireType() uint16 { return 0x0701 } // want "reconcile them"

// EncodePayload implements transport.Wire.
func (Mispinned) EncodePayload(w *transport.Writer) {}

func init() {
	transport.RegisterType(0x0101, func(r *transport.Reader) transport.Wire { return Ping{} })
	transport.RegisterType(0x0901, func(r *transport.Reader) transport.Wire { return Rogue{} }) // want "not documented in docs/PROTOCOL.md"
	transport.RegisterType(0x0501, func(r *transport.Reader) transport.Wire { return Drifted{} })
	transport.RegisterType(0x0301, func(r *transport.Reader) transport.Wire { return nil }) // want "encode side is missing"
	transport.RegisterType(0x0601, func(r *transport.Reader) transport.Wire { return Unpinned{} })
	transport.RegisterType(0x0701, func(r *transport.Reader) transport.Wire { return Mispinned{} })
	transport.MarkBorrowSafe(0x0101)
	transport.MarkBorrowSafe(0x0777) // want "without a RegisterType"
}
