package wire

import "internal/transport"

// Internal is deliberately undocumented: a simulator-only control frame.
type Internal struct{}

// WireType implements transport.Wire.
func (Internal) WireType() uint16 { return 0x0801 }

// EncodePayload implements transport.Wire.
func (Internal) EncodePayload(w *transport.Writer) {}

func init() {
	//octolint:allow wirereg simulator-only control frame, never crosses a real wire
	transport.RegisterType(0x0801, func(r *transport.Reader) transport.Wire { return Internal{} })
}
