package wire

import "internal/transport"

// Echo sits in the 0x7Fxx test-reserved block: wirereg ignores it.
type Echo struct{}

// WireType implements transport.Wire.
func (Echo) WireType() uint16 { return 0x7F01 }

// EncodePayload implements transport.Wire.
func (Echo) EncodePayload(w *transport.Writer) {}

func init() {
	transport.RegisterType(0x7F01, func(r *transport.Reader) transport.Wire { return Echo{} })
}
