// Command octolint is the repository's project-specific static-analysis
// suite: five analyzers that mechanically enforce invariants the compiler
// cannot see — seeded-replay determinism, telemetry anonymity, timer
// hygiene, wire-registry/PROTOCOL.md coherence, and atomic-access
// discipline. See docs/STATIC_ANALYSIS.md for each invariant, the
// incident that motivated it, and the escape-pragma policy
// (//octolint:allow <analyzer> <reason>).
//
// The binary speaks the `go vet` vet-tool protocol (the same contract
// golang.org/x/tools/go/analysis/unitchecker implements), so the two
// equivalent invocations are:
//
//	go run ./tools/octolint ./...              # standalone driver
//	go vet -vettool=$(which octolint) ./...    # explicit vet integration
//
// Standalone mode re-executes itself through `go vet -vettool=<self>` —
// the go command does the package loading, export-data plumbing, and
// caching — and then runs a curated set of the toolchain's own vet passes
// (lostcancel, atomic, copylocks, loopclosure, unreachable,
// testinggoroutine). Two passes the issue tracker curates from x/tools —
// nilness and unusedwrite — need golang.org/x/tools/go/analysis itself
// and are gated until this module grows that dependency; the vettool
// protocol means bundling them later is mechanical.
//
// Analyzer selection follows vet convention: with no analyzer flags all
// five run; naming any (-determinism, -anonleak, ...) runs only those.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore"
	"github.com/octopus-dht/octopus/tools/octolint/passes/anonleak"
	"github.com/octopus-dht/octopus/tools/octolint/passes/atomicstats"
	"github.com/octopus-dht/octopus/tools/octolint/passes/determinism"
	"github.com/octopus-dht/octopus/tools/octolint/passes/timerleak"
	"github.com/octopus-dht/octopus/tools/octolint/passes/wirereg"
)

// analyzers is the full suite, in documentation order.
var analyzers = []*lintcore.Analyzer{
	determinism.Analyzer,
	anonleak.Analyzer,
	timerleak.Analyzer,
	wirereg.Analyzer,
	atomicstats.Analyzer,
}

// curatedVetPasses are the toolchain-shipped go vet analyzers octolint
// runs alongside its own suite in standalone mode.
var curatedVetPasses = []string{
	"lostcancel", "atomic", "copylocks", "loopclosure", "unreachable", "testinggoroutine",
}

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	// Protocol handshakes from the go command come before flag parsing:
	// `octolint -V=full` and `octolint -flags`.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			lintcore.PrintVersion(os.Stdout)
			return 0
		case "-flags", "--flags":
			lintcore.PrintFlags(os.Stdout, analyzers)
			return 0
		}
	}

	fs := flag.NewFlagSet("octolint", flag.ContinueOnError)
	fs.Usage = usage(fs)
	selected := map[string]*bool{}
	for _, a := range analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	curated := fs.Bool("curated", true, "in standalone mode, also run the curated toolchain vet passes")
	docRoot := fs.String("docroot", "", "repository root override for doc cross-checks (default: walk up to go.mod)")
	fs.String("V", "", "version handshake (protocol use only)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	active := analyzers
	var picked []*lintcore.Analyzer
	var pickedFlags []string
	for _, a := range analyzers {
		if *selected[a.Name] {
			picked = append(picked, a)
			pickedFlags = append(pickedFlags, "-"+a.Name)
		}
	}
	if len(picked) > 0 {
		active = picked
	}

	rest := fs.Args()
	// Vet-tool mode: the go command hands us a single vet.cfg path.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lintcore.RunVetCfg(rest[0], *docRoot, active)
	}

	// Standalone driver: let `go vet` do package loading against this
	// very binary, then run the curated toolchain passes.
	pkgs := rest
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "octolint: locating own binary: %v\n", err)
		return 1
	}
	code := 0
	vetArgs := append([]string{"vet", "-vettool=" + exe}, pickedFlags...)
	if *docRoot != "" {
		vetArgs = append(vetArgs, "-docroot="+*docRoot)
	}
	if run("go", append(vetArgs, pkgs...)...) != nil {
		code = 2
	}
	if *curated {
		curArgs := []string{"vet"}
		for _, p := range curatedVetPasses {
			curArgs = append(curArgs, "-"+p)
		}
		if run("go", append(curArgs, pkgs...)...) != nil {
			code = 2
		}
	}
	if code == 0 {
		fmt.Printf("octolint: %d analyzers clean\n", len(active))
	}
	return code
}

func run(name string, args ...string) error {
	cmd := exec.Command(name, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(fs.Output(), "usage: octolint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
}
