package lintcore

// The `go vet -vettool` driver protocol, reimplemented on the standard
// library (mirroring golang.org/x/tools/go/analysis/unitchecker, which is
// not importable in this dependency-free module).
//
// The go command talks to a vet tool in three ways:
//
//  1. `tool -V=full` — print an identifying version line the build system
//     hashes into its action cache key.
//  2. `tool -flags` — print a JSON description of the tool's flags so
//     `go vet` can validate command-line analyzer selections.
//  3. `tool [flags] $WORK/<pkg>/vet.cfg` — analyze one package. The cfg
//     file carries the package's source files, import map, and the export
//     data of every dependency; diagnostics go to stderr, a facts file
//     (vetx) is written to cfg.VetxOutput, and a nonzero exit marks
//     findings.
//
// octolint has no cross-package facts, so dependency invocations
// (VetxOnly) write an empty facts file and exit immediately — analysis
// runs only on the packages named on the `go vet` command line.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// VetConfig mirrors the JSON schema of the vet.cfg files the go command
// writes for vet tools (cmd/go/internal/work.vetConfig).
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the -V=full handshake: a stable line keyed to
// the binary's own content hash, so the go command's action cache
// invalidates when the tool changes.
func PrintVersion(w io.Writer) error {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, ferr := os.Open(exe); ferr == nil {
			_, err = io.Copy(h, f)
			f.Close()
		} else {
			err = ferr
		}
	}
	if err != nil {
		// Degrade to a constant ID; the cache is merely less precise.
		fmt.Fprintf(w, "%s version devel octolint buildID=unknown\n", name)
		return nil
	}
	fmt.Fprintf(w, "%s version devel octolint buildID=%x\n", name, h.Sum(nil)[:16])
	return nil
}

// vetFlagDef is one entry of the -flags JSON handshake
// (cmd/go/internal/vet parses exactly these fields).
type vetFlagDef struct {
	Name  string
	Bool  bool
	Usage string
}

// PrintFlags implements the -flags handshake for the given analyzers:
// one boolean selection flag per analyzer, vet-style.
func PrintFlags(w io.Writer, analyzers []*Analyzer) error {
	defs := make([]vetFlagDef, 0, len(analyzers))
	for _, a := range analyzers {
		defs = append(defs, vetFlagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}

// RunVetCfg analyzes the package described by the vet.cfg file at
// cfgPath and prints surviving findings to stderr. The returned exit
// code follows vet-tool convention: 0 clean, 1 internal error, 2
// findings.
func RunVetCfg(cfgPath, docRoot string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octolint: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "octolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Dependency invocation: octolint keeps no facts, so there is nothing
	// to compute — just satisfy the protocol by producing the facts file.
	if cfg.VetxOnly {
		if err := writeVetx(&cfg); err != nil {
			fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(&cfg)
				return 0
			}
			fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := checkTypes(fset, &cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(&cfg)
			return 0
		}
		fmt.Fprintf(os.Stderr, "octolint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := RunPackage(fset, files, pkg, info, cfg.Dir, docRoot, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
		return 1
	}
	if err := writeVetx(&cfg); err != nil {
		fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return 2
}

// checkTypes typechecks the package using the export data the go command
// handed us for every dependency.
func checkTypes(fset *token.FileSet, cfg *VetConfig, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// The lookup func receives canonical (post-ImportMap) package paths
	// and must return that package's export data stream.
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := mapImporter{cfg: cfg, under: gcImporter}

	var firstErr error
	tc := &types.Config{
		Importer:  imp,
		GoVersion: goVersionFor(cfg),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// goVersionFor sanitizes cfg.GoVersion for types.Config: the go command
// may hand over entries like "go1.24.0" or module-style versions;
// go/types wants "go1.N" (or empty for "latest").
func goVersionFor(cfg *VetConfig) string {
	v := cfg.GoVersion
	if !strings.HasPrefix(v, "go1.") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

// mapImporter applies cfg.ImportMap before delegating to the export-data
// importer, mirroring unitchecker's importer chain.
type mapImporter struct {
	cfg   *VetConfig
	under types.Importer
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return m.under.Import(path)
}

// writeVetx produces the (empty — octolint has no facts) serialized facts
// file the go command expects at cfg.VetxOutput.
func writeVetx(cfg *VetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		return fmt.Errorf("writing facts file: %w", err)
	}
	return nil
}
