package lintcore

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// mockAnalyzer flags every function declaration, giving the pragma tests
// a finding on any line they choose.
var mockAnalyzer = New(&Analyzer{
	Name: "mock",
	Doc:  "test analyzer: flags every function declaration",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok {
					p.Reportf(fn.Pos(), "function %s declared", fn.Name.Name)
				}
			}
		}
		return nil
	},
})

func runSource(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewTypesInfo()
	pkg, err := (&types.Config{}).Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	findings, err := RunPackage(fset, []*ast.File{f}, pkg, info, ".", "", []*Analyzer{mockAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return findings
}

func TestPragmaSuppressesSameAndPreviousLine(t *testing.T) {
	src := `package fix

//octolint:allow mock annotated on the line above
func a() {}

func b() {} //octolint:allow mock annotated on the same line

func c() {}
`
	findings := runSource(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly c's", findings)
	}
	if !strings.Contains(findings[0].Message, "function c") {
		t.Errorf("surviving finding = %s, want c's", findings[0])
	}
}

func TestUnknownPragmaAnalyzerFailsLoudly(t *testing.T) {
	src := `package fix

//octolint:allow nosuchpass sounded plausible
func a() {}
`
	findings := runSource(t, src)
	// The bogus pragma suppresses nothing (a's finding survives) and is
	// itself an error naming the known analyzers.
	var sawBad, sawFunc bool
	for _, f := range findings {
		if f.Analyzer == "octolint" && strings.Contains(f.Message, `unknown analyzer "nosuchpass"`) {
			sawBad = true
			if !strings.Contains(f.Message, "mock") {
				t.Errorf("unknown-analyzer error should list known names, got: %s", f.Message)
			}
		}
		if strings.Contains(f.Message, "function a") {
			sawFunc = true
		}
	}
	if !sawBad || !sawFunc {
		t.Fatalf("want loud unknown-analyzer error AND the unsuppressed finding, got %v", findings)
	}
}

func TestPragmaWithoutReasonFailsLoudly(t *testing.T) {
	src := `package fix

//octolint:allow mock
func a() {}
`
	findings := runSource(t, src)
	var sawBad, sawFunc bool
	for _, f := range findings {
		if f.Analyzer == "octolint" && strings.Contains(f.Message, "no reason") {
			sawBad = true
		}
		if strings.Contains(f.Message, "function a") {
			sawFunc = true
		}
	}
	if !sawBad || !sawFunc {
		t.Fatalf("want no-reason error AND the unsuppressed finding, got %v", findings)
	}
}

func TestMalformedPragmaFailsLoudly(t *testing.T) {
	src := `package fix

//octolint:allow
func a() {}
`
	findings := runSource(t, src)
	found := false
	for _, f := range findings {
		if f.Analyzer == "octolint" && strings.Contains(f.Message, "malformed pragma") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want malformed-pragma error, got %v", findings)
	}
}

func TestPragmaErrorsAreUnsuppressible(t *testing.T) {
	// "octolint" is a pseudo-analyzer, never registered: a pragma naming
	// it is itself an unknown-analyzer error, so the validation layer
	// cannot be turned off.
	src := `package fix

//octolint:allow octolint silencing the silencer
//octolint:allow nosuchpass oops
func a() {}
`
	findings := runSource(t, src)
	bad := 0
	for _, f := range findings {
		if f.Analyzer == "octolint" {
			bad++
		}
	}
	if bad != 2 {
		t.Fatalf("want both pragma errors reported, got %v", findings)
	}
}
