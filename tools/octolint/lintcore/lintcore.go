// Package lintcore is a self-contained analysis framework shaped after
// golang.org/x/tools/go/analysis, built on the standard library only.
//
// The repository deliberately has no module dependencies, so the real
// go/analysis packages (and their multichecker/unitchecker drivers) are not
// importable here. lintcore reimplements the slice octolint needs: an
// Analyzer with a Run(*Pass) hook over a typechecked package, diagnostics
// with positions, the `//octolint:allow <analyzer> <reason>` escape pragma,
// and (in unitchecker.go) the `go vet -vettool` driver protocol, so each
// pass reads like an x/tools pass and the binary plugs into `go vet`
// unchanged. If golang.org/x/tools ever becomes vendorable, passes can be
// ported mechanically: the Pass surface is a subset of analysis.Pass.
package lintcore

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, selection flags, and
	// allow pragmas. Lowercase, no spaces.
	Name string
	// Doc is a one-line description (shown by -flags and in usage).
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// knownAnalyzers records every analyzer name linked into the process, so
// pragma validation can tell a typo from a deliberately selected subset:
// an //octolint:allow naming an analyzer that exists but is not running
// this invocation must stay silent, while a name that exists nowhere must
// fail loudly.
var knownAnalyzers = map[string]bool{}

// New registers the analyzer's name and returns it. Every pass package
// constructs its Analyzer through New at package init.
func New(a *Analyzer) *Analyzer {
	knownAnalyzers[a.Name] = true
	return a
}

// KnownAnalyzer reports whether name belongs to any analyzer linked into
// this binary.
func KnownAnalyzer(name string) bool { return knownAnalyzers[name] }

// Pass carries one typechecked package through an analyzer. It is a subset
// of golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory on disk, used by passes that
	// cross-check repository files (wirereg against docs/PROTOCOL.md).
	Dir string
	// DocRoot overrides repository-root discovery for passes that read
	// repo-level files. Empty means "walk up from Dir to go.mod". Tests
	// point it at a fixture tree.
	DocRoot string

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Posn:     p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file is a _test.go file. Passes that
// guard runtime invariants (determinism, anonleak, wirereg, atomicstats)
// skip test files; timerleak deliberately includes them.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Posn, f.Message, f.Analyzer)
}

// pragmaPrefix introduces an escape pragma comment.
const pragmaPrefix = "//octolint:allow"

// pragma is one parsed //octolint:allow comment.
type pragma struct {
	file     string
	line     int
	analyzer string
	reason   string
	posn     token.Position
}

// parsePragmas extracts allow pragmas from all comments in the files.
// Malformed pragmas (no analyzer, no reason, or an analyzer name unknown
// to the whole binary) are themselves findings, attributed to the
// "octolint" pseudo-analyzer — a typo in a suppression must never
// silently suppress nothing while appearing to work.
func parsePragmas(fset *token.FileSet, files []*ast.File) (out []pragma, bad []Finding) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: "octolint",
						Posn:     posn,
						Message:  "malformed pragma: want //octolint:allow <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				if !KnownAnalyzer(name) {
					bad = append(bad, Finding{
						Analyzer: "octolint",
						Posn:     posn,
						Message:  fmt.Sprintf("pragma names unknown analyzer %q (known: %s)", name, knownNames()),
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "octolint",
						Posn:     posn,
						Message:  fmt.Sprintf("pragma for %q has no reason; a suppression must say why", name),
					})
					continue
				}
				out = append(out, pragma{
					file:     posn.Filename,
					line:     posn.Line,
					analyzer: name,
					reason:   strings.Join(fields[1:], " "),
					posn:     posn,
				})
			}
		}
	}
	return out, bad
}

func knownNames() string {
	names := make([]string, 0, len(knownAnalyzers))
	for n := range knownAnalyzers {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// suppressed reports whether a pragma covers the finding: same file, same
// analyzer, on the finding's line or the line directly above it (the
// pragma on its own line annotating the statement below).
func suppressed(f Finding, pragmas []pragma) bool {
	for _, p := range pragmas {
		if p.analyzer != f.Analyzer || p.file != f.Posn.Filename {
			continue
		}
		if p.line == f.Posn.Line || p.line == f.Posn.Line-1 {
			return true
		}
	}
	return false
}

// RunPackage runs the analyzers over one typechecked package and returns
// the findings that survive pragma suppression, sorted by position.
// Pragma validation errors are always included — they are not
// suppressible.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, dir, docRoot string, analyzers []*Analyzer) ([]Finding, error) {
	pragmas, bad := parsePragmas(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Dir:       dir,
			DocRoot:   docRoot,
			report: func(f Finding) {
				findings = append(findings, f)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	kept := bad
	for _, f := range findings {
		if !suppressed(f, pragmas) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Posn, kept[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// NewTypesInfo returns a fully populated types.Info for a package check.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
