package lintcore

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// PkgPathIs matches an import path against a target, tolerating both the
// repository's full module prefix and the bare fixture paths linttest
// loads: "github.com/octopus-dht/octopus/internal/obs" and "internal/obs"
// both match target "internal/obs"; stdlib targets ("time") match exactly.
func PkgPathIs(path, target string) bool {
	return path == target || strings.HasSuffix(path, "/"+target)
}

// BasePkgPath strips the " [pkg.test]" variant suffix the build system
// appends to in-package test compilations, so scope checks see the plain
// import path.
func BasePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// CalleeObject resolves the object a call expression invokes: a
// package-level function, a method, or nil for indirect calls through
// function values, built-ins, and type conversions.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj() // method or field call
		}
		// Qualified identifier: pkg.Func.
		if o := info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the named package-level
// function of the package identified by pkgTarget (matched with
// PkgPathIs). Methods do not match.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgTarget, name string) bool {
	obj := CalleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	if fn.Signature().Recv() != nil {
		return false
	}
	return PkgPathIs(fn.Pkg().Path(), pkgTarget)
}

// NamedTypeIs reports whether t (after unwrapping pointers and aliases)
// is the named type pkgTarget.name.
func NamedTypeIs(t types.Type, pkgTarget, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PkgPathIs(obj.Pkg().Path(), pkgTarget)
}

// SubtreeHasType reports whether any expression in the subtree rooted at
// e has one of the given named types (pkgTarget, name pairs flattened as
// [path1, name1, path2, name2, ...]).
func SubtreeHasType(info *types.Info, e ast.Expr, pairs ...string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := info.TypeOf(ex)
		for i := 0; i+1 < len(pairs); i += 2 {
			if NamedTypeIs(t, pairs[i], pairs[i+1]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// RepoRoot resolves the repository root for a pass: the explicit DocRoot
// override if set, otherwise the nearest ancestor of dir containing
// go.mod. Returns "" when neither resolves.
func RepoRoot(docRoot, dir string) string {
	if docRoot != "" {
		return docRoot
	}
	d := dir
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d || d == "" {
			return ""
		}
		d = parent
	}
}

// ConstString returns the constant string value of e, if it has one.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// ConstUint returns the constant unsigned integer value of e, if any.
func ConstUint(info *types.Info, e ast.Expr) (uint64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Uint64Val(tv.Value)
}
