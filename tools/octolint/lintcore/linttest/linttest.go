// Package linttest runs octolint analyzers over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest (not importable in
// this dependency-free module).
//
// A fixture directory holds packages under src/<importpath>/*.go. Expected
// findings are declared in the source with trailing comments:
//
//	rand.Seed(1) // want "global math/rand"
//
// The quoted text is a regular expression matched against the finding
// message reported on that line; several `// want "a" "b"` patterns may
// share a line. Fixture packages may import each other by their src/
// paths (so a stub `internal/obs` can stand in for the real one) and may
// import the real standard library, which is typechecked from GOROOT
// source — no export data or network needed.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore"
)

// The file set and GOROOT-source importer are process-global: the source
// importer caches each typechecked stdlib package, so every Run after the
// first reuses (for example) time, fmt, and sync/atomic for free.
var (
	mu     sync.Mutex
	fset   = token.NewFileSet()
	stdImp types.ImporterFrom
)

func stdImporter() types.ImporterFrom {
	if stdImp == nil {
		stdImp = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	}
	return stdImp
}

// Run analyzes the fixture package at dir/src/<pkgPath> with the analyzer
// and diffs reported findings against the // want expectations.
func Run(t *testing.T, dir string, a *lintcore.Analyzer, pkgPath string) {
	t.Helper()
	RunDocRoot(t, dir, "", a, pkgPath)
}

// RunDocRoot is Run with an explicit repository-root override for passes
// that cross-check repo files (wirereg's PROTOCOL.md tables).
func RunDocRoot(t *testing.T, dir, docRoot string, a *lintcore.Analyzer, pkgPath string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()

	ld := &loader{root: filepath.Join(dir, "src"), pkgs: map[string]*loaded{}}
	target, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	findings, err := lintcore.RunPackage(fset, target.files, target.pkg, target.info,
		filepath.Join(ld.root, pkgPath), docRoot, []*lintcore.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, target.files)
	matchFindings(t, findings, wants)
}

// loaded is one typechecked fixture package.
type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader typechecks fixture packages on demand, consulting the fixture
// src/ tree first and GOROOT source for everything else.
type loader struct {
	root string
	pkgs map[string]*loaded
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var firstErr error
	tc := &types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == "unsafe" {
				return types.Unsafe, nil
			}
			if _, err := os.Stat(filepath.Join(l.root, p)); err == nil {
				sub, err := l.load(p)
				if err != nil {
					return nil, err
				}
				return sub.pkg, nil
			}
			return stdImporter().ImportFrom(p, l.root, 0)
		}),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := lintcore.NewTypesInfo()
	pkg, err := tc.Check(path, fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return nil, err
	}
	p := &loaded{files: files, pkg: pkg, info: info}
	l.pkgs[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation: a message pattern anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", posn, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: want pattern %q: %v", posn, pat, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

func matchFindings(t *testing.T, findings []lintcore.Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if w.matched || w.file != f.Posn.Filename || w.line != f.Posn.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
