package determinism_test

import (
	"testing"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore/linttest"
	"github.com/octopus-dht/octopus/tools/octolint/passes/determinism"
)

func TestSeededPackage(t *testing.T) {
	linttest.Run(t, "../../testdata/determinism", determinism.Analyzer, "internal/core")
}

func TestUnseededPackage(t *testing.T) {
	linttest.Run(t, "../../testdata/determinism", determinism.Analyzer, "other")
}
