// Package determinism enforces the seeded-replay invariant: every run of
// the simulated protocol stack with the same seed must be bit-identical,
// because the committed figures, BENCH_baseline.json headline units, and
// the chaos-replay regression tests are all pinned to exact seeded
// trajectories. Three bug classes have broken that repeatedly:
//
//   - wall-clock reads (time.Now) leaking into protocol decisions,
//   - the global math/rand source (process-wide, seeded from entropy since
//     Go 1.20) or an explicitly time-seeded rand.Source, and
//   - ranging over a map while producing encoder/hash/wire output — Go
//     randomizes map iteration order per run.
//
// The first two are flagged only inside the seeded packages
// (internal/core, internal/chord, internal/simnet, internal/experiments);
// time-seeded sources are flagged everywhere (a time-seeded RNG once made
// joiner identity keys recoverable from the public ring ID). Test files
// are exempt: they drive wall-clock transports deliberately.
package determinism

import (
	"go/ast"
	"go/types"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore"
)

// Analyzer is the determinism pass.
var Analyzer = lintcore.New(&lintcore.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global/time-seeded RNG, and map-order-dependent encoding in seeded packages",
	Run:  run,
})

// seededPkgs are the packages whose behavior is pinned by seed.
var seededPkgs = []string{
	"internal/core",
	"internal/chord",
	"internal/simnet",
	"internal/experiments",
}

// globalRandFuncs are the package-level functions of math/rand (and v2)
// that draw from the shared, entropy-seeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// encodeSinkNames are method/function names whose presence in a function
// marks it as producing encoder, hash, or wire fan-out output; a map
// iteration in such a function is order-sensitive. Collecting keys into a
// slice and sorting before the loop is the sanctioned pattern and does
// not trigger (the loop then ranges over a slice).
var encodeSinkNames = map[string]bool{
	"Encode": true, "EncodeTo": true, "EncodeBuf": true,
	"EncodeNested": true, "EncodePayload": true,
	"Send": true, "Call": true, "BootstrapCall": true, "AnonRPC": true,
	"Sum64": true,
}

func run(pass *lintcore.Pass) error {
	pkgPath := lintcore.BasePkgPath(pass.Pkg.Path())
	inSeeded := false
	for _, p := range seededPkgs {
		if lintcore.PkgPathIs(pkgPath, p) {
			inSeeded = true
			break
		}
	}

	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			checkDecl(pass, decl, inSeeded)
		}
	}
	return nil
}

func checkDecl(pass *lintcore.Pass, decl ast.Decl, inSeeded bool) {
	fn, isFunc := decl.(*ast.FuncDecl)
	sinky := isFunc && functionFeedsEncoding(pass, fn)

	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, inSeeded)
		case *ast.RangeStmt:
			if inSeeded && sinky && isMapType(pass.TypesInfo.TypeOf(n.X)) &&
				!sortedAfterLoop(pass, decl, n) {
				pass.Reportf(n.Pos(),
					"map iteration in a function that feeds encoding or wire output; iteration order is randomized per run — collect and sort the keys first (seeded runs must replay bit-identically)")
			}
		}
		return true
	})
}

func checkCall(pass *lintcore.Pass, call *ast.CallExpr, inSeeded bool) {
	// Time-seeded RNG sources are wrong in every package: a source seeded
	// from the clock is both nondeterministic and (for key material)
	// recoverable by an attacker who can bound the start time.
	if isRandConstructor(pass.TypesInfo, call) && len(call.Args) > 0 {
		for _, arg := range call.Args {
			if subtreeReadsClock(pass.TypesInfo, arg) {
				pass.Reportf(call.Pos(),
					"RNG seeded from the wall clock; derive the seed from configuration (seeded replay) or crypto/rand (key material)")
				return
			}
		}
	}

	if !inSeeded {
		return
	}
	if lintcore.IsPkgFunc(pass.TypesInfo, call, "time", "Now") {
		pass.Reportf(call.Pos(),
			"time.Now in a seeded package; use the transport clock (virtual under simnet) so seeded runs replay bit-identically")
		return
	}
	if obj := lintcore.CalleeObject(pass.TypesInfo, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Signature().Recv() == nil {
			path := fn.Pkg().Path()
			if (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"global %s.%s draws from the process-wide entropy-seeded source; use a *rand.Rand derived from the run seed", path, fn.Name())
			}
		}
	}
}

// isRandConstructor matches rand.NewSource / rand.New / rand.NewPCG /
// rand.NewChaCha8 from math/rand or math/rand/v2.
func isRandConstructor(info *types.Info, call *ast.CallExpr) bool {
	obj := lintcore.CalleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	switch fn.Name() {
	case "NewSource", "New", "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}

// subtreeReadsClock reports whether the expression contains a call to
// time.Now or a Unix/UnixNano/UnixMicro/UnixMilli conversion of one.
func subtreeReadsClock(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lintcore.IsPkgFunc(info, call, "time", "Now") {
			found = true
			return false
		}
		return true
	})
	return found
}

// functionFeedsEncoding reports whether the function's body contains a
// call that emits encoded/wire/hash output: a name from encodeSinkNames,
// any method on transport.Writer, or the function being an EncodePayload
// method itself.
func functionFeedsEncoding(pass *lintcore.Pass, fn *ast.FuncDecl) bool {
	if fn.Body == nil {
		return false
	}
	if fn.Name != nil && fn.Name.Name == "EncodePayload" {
		return true
	}
	return bodyFeedsEncoding(pass, fn.Body)
}

// bodyFeedsEncoding reports whether the subtree contains a call that emits
// encoded/wire/hash output.
func bodyFeedsEncoding(pass *lintcore.Pass, body ast.Node) bool {
	sinky := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sinky {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if encodeSinkNames[sel.Sel.Name] {
			sinky = true
			return false
		}
		// Any method on the wire codec's Writer counts: w.U64(...) etc.
		if recv := pass.TypesInfo.TypeOf(sel.X); recv != nil &&
			lintcore.NamedTypeIs(recv, "internal/transport", "Writer") {
			sinky = true
			return false
		}
		return true
	})
	return sinky
}

// sortedAfterLoop recognizes the sanctioned collect-then-sort idiom: the
// map range only appends into slices, and every such slice is passed to a
// sort/slices call later in the same enclosing block, so the map's
// iteration order never reaches the encoder.
func sortedAfterLoop(pass *lintcore.Pass, root ast.Node, rng *ast.RangeStmt) bool {
	// A loop that encodes or sends directly keeps the report regardless of
	// what else it appends.
	if bodyFeedsEncoding(pass, rng.Body) {
		return false
	}
	targets := appendTargets(pass.TypesInfo, rng.Body)
	if len(targets) == 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range blk.List {
			if st != ast.Stmt(rng) {
				continue
			}
			for _, later := range blk.List[i+1:] {
				markSortedTargets(pass.TypesInfo, later, targets, sorted)
			}
		}
		return true
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// appendTargets collects the variables the loop body appends into.
func appendTargets(info *types.Info, body ast.Node) map[types.Object]bool {
	targets := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				targets[obj] = true
			}
		}
		return true
	})
	return targets
}

// markSortedTargets records which target slices the statement hands to a
// sort or slices package call.
func markSortedTargets(info *types.Info, st ast.Stmt, targets, sorted map[types.Object]bool) {
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := lintcore.CalleeObject(info, call)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					if o := info.Uses[id]; o != nil && targets[o] {
						sorted[o] = true
					}
				}
				return true
			})
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}
