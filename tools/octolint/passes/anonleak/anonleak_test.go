package anonleak_test

import (
	"testing"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore/linttest"
	"github.com/octopus-dht/octopus/tools/octolint/passes/anonleak"
)

func TestIdentityLeaks(t *testing.T) {
	linttest.Run(t, "../../testdata/anonleak", anonleak.Analyzer, "internal/core")
}
