// Package anonleak makes the PR 8 telemetry-linkage guarantee a
// compile-time property: no identity- or endpoint-typed value may reach
// an observability export outside the internal/obs redaction seam.
//
// The runtime guarantee is that RedactAnonymous scrubs a fixed set of
// sensitive span-attribute keys (and zeroes trace ids) at record time, so
// exported telemetry joins to nothing. That protects exactly the keys the
// seam knows about. The remaining hole is structural: a span attribute
// recorded under a key redaction does NOT scrub, whose value derives from
// a transport address, node identity, or lookup key — or the same value
// printed straight to a process log. The adversary/telemetry.go attack
// reconstructs initiator→target joins from precisely such residue.
//
// anonleak therefore flags, outside internal/obs and outside test files:
//
//   - obs.A(key, value) calls and obs.Attr literals whose value derives
//     from an identity-typed expression (transport.Addr, chord.Peer,
//     id.ID) while the key is NOT in the redaction seam's sensitive set
//     (values under sensitive keys are scrubbed before export and are
//     therefore fine to record);
//   - identity-typed values flowing into process logs (log.*, slog.*, and
//     fmt prints to stdout/stderr) inside the protocol packages.
//
// The sensitive-key set is parsed from internal/obs's own source (the
// sensitiveAttrs map), so the analyzer cannot drift from the seam it
// polices; a built-in copy covers trees where that source is absent.
package anonleak

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore"
)

// Analyzer is the anonleak pass.
var Analyzer = lintcore.New(&lintcore.Analyzer{
	Name: "anonleak",
	Doc:  "flag identity/endpoint-typed values reaching telemetry or logs outside the internal/obs redaction seam",
	Run:  run,
})

// identityTypes are the named types whose values identify a node,
// endpoint, or lookup target: [pkg-path-suffix, type-name] pairs for
// lintcore.SubtreeHasType.
var identityTypes = []string{
	"internal/transport", "Addr",
	"internal/chord", "Peer",
	"internal/id", "ID",
}

// protocolPkgs are the packages whose process output could be harvested
// by a telemetry observer; logging an identity there is a linkage leak.
var protocolPkgs = []string{
	"internal/core",
	"internal/chord",
	"internal/store",
	"internal/simnet",
	"internal/transport",
	"internal/transport/chantransport",
	"internal/transport/nettransport",
}

// builtinSensitiveKeys mirrors internal/obs's sensitiveAttrs map as of
// this pass's writing; loadSensitiveKeys prefers the live source.
var builtinSensitiveKeys = map[string]bool{
	"initiator": true, "target": true, "target_key": true, "key": true,
	"from": true, "next": true, "pair_first": true, "pair_second": true,
}

func run(pass *lintcore.Pass) error {
	pkgPath := lintcore.BasePkgPath(pass.Pkg.Path())
	if lintcore.PkgPathIs(pkgPath, "internal/obs") {
		return nil // the redaction seam itself
	}
	sensitive := loadSensitiveKeys(lintcore.RepoRoot(pass.DocRoot, pass.Dir))
	inProtocol := false
	for _, p := range protocolPkgs {
		if lintcore.PkgPathIs(pkgPath, p) {
			inProtocol = true
			break
		}
	}

	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAttrCall(pass, n, sensitive)
				if inProtocol {
					checkLogCall(pass, n)
				}
			case *ast.CompositeLit:
				checkAttrLiteral(pass, n, sensitive)
			}
			return true
		})
	}
	return nil
}

// checkAttrCall handles obs.A(key, value).
func checkAttrCall(pass *lintcore.Pass, call *ast.CallExpr, sensitive map[string]bool) {
	if !lintcore.IsPkgFunc(pass.TypesInfo, call, "internal/obs", "A") || len(call.Args) != 2 {
		return
	}
	checkAttr(pass, call.Pos(), call.Args[0], call.Args[1], sensitive)
}

// checkAttrLiteral handles obs.Attr{Key: ..., Value: ...} literals.
func checkAttrLiteral(pass *lintcore.Pass, lit *ast.CompositeLit, sensitive map[string]bool) {
	t := pass.TypesInfo.TypeOf(lit)
	if !lintcore.NamedTypeIs(t, "internal/obs", "Attr") {
		return
	}
	var key, value ast.Expr
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				switch id.Name {
				case "Key":
					key = kv.Value
				case "Value":
					value = kv.Value
				}
			}
			continue
		}
		// Positional literal: Attr{key, value}.
		switch i {
		case 0:
			key = el
		case 1:
			value = el
		}
	}
	if key == nil || value == nil {
		return
	}
	checkAttr(pass, lit.Pos(), key, value, sensitive)
}

func checkAttr(pass *lintcore.Pass, pos token.Pos, key, value ast.Expr, sensitive map[string]bool) {
	if !lintcore.SubtreeHasType(pass.TypesInfo, value, identityTypes...) {
		return
	}
	k, konst := lintcore.ConstString(pass.TypesInfo, key)
	if konst && sensitive[k] {
		return // scrubbed by RedactAnonymous before export
	}
	if konst {
		pass.Reportf(pos,
			"span attribute %q carries an identity/endpoint-typed value but is not in internal/obs's sensitive-key set; redaction will export it verbatim and hand a telemetry observer a linkage key", k)
		return
	}
	pass.Reportf(pos,
		"span attribute with a non-constant key carries an identity/endpoint-typed value; redaction cannot prove this key is scrubbed — use a constant key from the sensitive set")
}

// logSinkFuncs are package-level print functions whose output leaves the
// process unredacted.
var logSinkFuncs = map[string]map[string]bool{
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
	"log/slog": {
		"Debug": true, "Info": true, "Warn": true, "Error": true,
		"DebugContext": true, "InfoContext": true, "WarnContext": true, "ErrorContext": true,
		"Log": true, "LogAttrs": true,
	},
}

// checkLogCall flags identity-typed values in process-log output within
// protocol packages: log/slog calls (package-level or method), and fmt
// prints addressed to stdout/stderr. fmt.Sprintf and prints into local
// buffers are functional string building, not an export, and are not
// flagged.
func checkLogCall(pass *lintcore.Pass, call *ast.CallExpr) {
	obj := lintcore.CalleeObject(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sink := false
	switch {
	case logSinkFuncs[path] != nil && fn.Signature().Recv() == nil:
		sink = logSinkFuncs[path][name]
	case path == "log" || path == "log/slog":
		sink = strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fatal") ||
			strings.HasPrefix(name, "Panic") || name == "Debug" || name == "Info" ||
			name == "Warn" || name == "Error" || name == "Log" || name == "LogAttrs"
	case path == "fmt" && (name == "Print" || name == "Printf" || name == "Println"):
		sink = true
	case path == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
		sink = len(call.Args) > 0 && isStdStream(pass.TypesInfo, call.Args[0])
	}
	if !sink {
		return
	}
	for _, arg := range call.Args {
		if lintcore.SubtreeHasType(pass.TypesInfo, arg, identityTypes...) {
			pass.Reportf(call.Pos(),
				"identity/endpoint-typed value printed to a process log in a protocol package; logs bypass the internal/obs redaction seam — record a span with a sensitive-set key instead")
			return
		}
	}
}

// isStdStream reports whether e resolves to os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}

// loadSensitiveKeys parses the sensitiveAttrs map literal out of
// internal/obs's source under root, falling back to the built-in copy.
func loadSensitiveKeys(root string) map[string]bool {
	if root == "" {
		return builtinSensitiveKeys
	}
	dir := filepath.Join(root, "internal", "obs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return builtinSensitiveKeys
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		if keys := sensitiveMapKeys(f); keys != nil {
			return keys
		}
	}
	return builtinSensitiveKeys
}

// sensitiveMapKeys extracts the string keys of a package-level
// `sensitiveAttrs = map[string]bool{...}` declaration.
func sensitiveMapKeys(f *ast.File) map[string]bool {
	var lit *ast.CompositeLit
	ast.Inspect(f, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok || lit != nil {
			return true
		}
		for i, name := range spec.Names {
			if name.Name == "sensitiveAttrs" && i < len(spec.Values) {
				if cl, ok := spec.Values[i].(*ast.CompositeLit); ok {
					lit = cl
				}
			}
		}
		return true
	})
	if lit == nil {
		return nil
	}
	keys := map[string]bool{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if bl, ok := kv.Key.(*ast.BasicLit); ok && bl.Kind == token.STRING && len(bl.Value) >= 2 {
			keys[bl.Value[1:len(bl.Value)-1]] = true
		}
	}
	if len(keys) == 0 {
		return nil
	}
	return keys
}
