// Package timerleak flags time.After inside for/select loops. Each
// time.After call allocates a timer that is not released until it fires;
// in a loop that is one leaked timer per iteration, and with long
// durations (query timeouts, shutdown deadlines) the leak accumulates for
// minutes. The same defect was fixed three separate times across PRs 5–6
// (core serve bridge, admission relay, octopusd wait loops); the
// sanctioned pattern is a single time.NewTimer (or a deadline timer)
// stopped or reset across iterations.
//
// Unlike the other passes this one inspects _test.go files too: leaked
// timers in polling test loops are how the class kept reappearing.
package timerleak

import (
	"go/ast"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore"
)

// Analyzer is the timerleak pass.
var Analyzer = lintcore.New(&lintcore.Analyzer{
	Name: "timerleak",
	Doc:  "flag time.After inside for/select loops (one leaked timer per iteration)",
	Run:  run,
})

func run(pass *lintcore.Pass) error {
	for _, file := range pass.Files {
		checkFile(pass, file)
	}
	return nil
}

func checkFile(pass *lintcore.Pass, file *ast.File) {
	// Walk with an explicit loop-depth counter: a time.After evaluated
	// anywhere inside a loop body (including select cases and function
	// literals created per iteration) runs once per iteration.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) {
				d := depth
				if c == n.Body {
					d++
				}
				walk(c, d)
			})
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) {
				d := depth
				if c == n.Body {
					d++
				}
				walk(c, d)
			})
			return
		case *ast.CallExpr:
			if depth > 0 && lintcore.IsPkgFunc(pass.TypesInfo, n, "time", "After") {
				pass.Reportf(n.Pos(),
					"time.After inside a loop leaks one timer per iteration until it fires; hoist a time.NewTimer and Stop/Reset it across iterations")
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, depth) })
	}
	walk(file, 0)
}

// walkChildren visits the direct children of n.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // enter n itself
		}
		if c == nil {
			return false
		}
		visit(c)
		return false // do not descend; visit recurses
	})
}
