package timerleak_test

import (
	"testing"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore/linttest"
	"github.com/octopus-dht/octopus/tools/octolint/passes/timerleak"
)

func TestTimerLoops(t *testing.T) {
	linttest.Run(t, "../../testdata/timerleak", timerleak.Analyzer, "timer")
}
