// Package wirereg keeps the wire-protocol registry, the codec
// implementations, and docs/PROTOCOL.md from drifting apart. For every
// wire type a package registers (transport.RegisterType) in the protocol
// code-block range 0x0100–0x7EFF it checks that:
//
//   - the type code appears in a docs/PROTOCOL.md registry table row;
//   - the registered decoder has its encode-side counterpart: some type in
//     the same package whose WireType() method returns the code (and,
//     conversely, every WireType() claim in range is actually registered);
//   - transport.MarkBorrowSafe is only applied to codes the same package
//     registered — anything else panics at init;
//   - the PROTOCOL.md row's message name matches the Go type name; and
//   - when the row documents a fixed byte size, that exact (name, size)
//     pair is pinned in TestProtocolDocFixedSizes
//     (internal/transport/protocol_doc_test.go), the test that holds the
//     spec to the real encoders.
//
// Codes at 0x7F00 and above are reserved for test-only registrations
// (transporttest uses 0x7F01) and are not checked. The §-table formats
// accepted are the repo's two registry-table shapes: four columns with a
// trailing size cell (integer or "variable"), and three columns where the
// size lives in prose (those rows get the name check only).
package wirereg

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore"
)

// Analyzer is the wirereg pass.
var Analyzer = lintcore.New(&lintcore.Analyzer{
	Name: "wirereg",
	Doc:  "cross-check wire-type registrations against codec pairs, PROTOCOL.md tables, and pinned sizes",
	Run:  run,
})

// Checked code range: the protocol's allocated blocks. 0x7Fxx is the
// test-reserved block.
const (
	codeLow  = 0x0100
	codeHigh = 0x7EFF
)

type docRow struct {
	name    string
	size    int
	hasSize bool
}

func run(pass *lintcore.Pass) error {
	regs := map[uint64]token.Pos{}  // RegisterType calls
	marks := map[uint64]token.Pos{} // MarkBorrowSafe calls
	impls := map[uint64][]implInfo{}

	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if lintcore.IsPkgFunc(pass.TypesInfo, n, "internal/transport", "RegisterType") && len(n.Args) >= 1 {
					if code, ok := lintcore.ConstUint(pass.TypesInfo, n.Args[0]); ok {
						if _, dup := regs[code]; !dup {
							regs[code] = n.Pos()
						}
					}
				}
				if lintcore.IsPkgFunc(pass.TypesInfo, n, "internal/transport", "MarkBorrowSafe") && len(n.Args) >= 1 {
					if code, ok := lintcore.ConstUint(pass.TypesInfo, n.Args[0]); ok {
						marks[code] = n.Pos()
					}
				}
			case *ast.FuncDecl:
				if name, code, ok := wireTypeImpl(pass, n); ok {
					impls[code] = append(impls[code], implInfo{name: name, pos: n.Pos()})
				}
			}
			return true
		})
	}

	inRange := func(c uint64) bool { return c >= codeLow && c <= codeHigh }
	anyInRange := false
	for c := range regs {
		if inRange(c) {
			anyInRange = true
		}
	}
	for c := range impls {
		if inRange(c) {
			anyInRange = true
		}
	}
	if !anyInRange && len(marks) == 0 {
		return nil
	}

	// MarkBorrowSafe before/without RegisterType panics at package init.
	for code, pos := range marks {
		if _, ok := regs[code]; !ok {
			pass.Reportf(pos, "MarkBorrowSafe(0x%04X) without a RegisterType for that code in this package; this panics at init", code)
		}
	}

	// Encode/decode pairing.
	for code, pos := range regs {
		if !inRange(code) {
			continue
		}
		if len(impls[code]) == 0 {
			pass.Reportf(pos, "wire type 0x%04X has a registered decoder but no type in this package returns it from WireType(); the encode side is missing", code)
		}
	}
	for code, list := range impls {
		if !inRange(code) {
			continue
		}
		if _, ok := regs[code]; !ok {
			for _, im := range list {
				pass.Reportf(im.pos, "type %s claims wire type 0x%04X but this package never registers a decoder for it; frames of this type cannot be decoded", im.name, code)
			}
		}
	}

	if !anyInRange {
		return nil
	}
	root := lintcore.RepoRoot(pass.DocRoot, pass.Dir)
	if root == "" {
		return fmt.Errorf("wirereg: cannot locate repository root from %s", pass.Dir)
	}
	rows, err := parseProtocolDoc(filepath.Join(root, "docs", "PROTOCOL.md"))
	if err != nil {
		return fmt.Errorf("wirereg: %w", err)
	}
	pinned, err := parsePinnedSizes(filepath.Join(root, "internal", "transport", "protocol_doc_test.go"))
	if err != nil {
		return fmt.Errorf("wirereg: %w", err)
	}

	for code, pos := range regs {
		if !inRange(code) {
			continue
		}
		row, documented := rows[code]
		if !documented {
			pass.Reportf(pos, "wire type 0x%04X is not documented in docs/PROTOCOL.md; add it to the registry table for its block", code)
			continue
		}
		for _, im := range impls[code] {
			if row.name != im.name {
				pass.Reportf(im.pos, "docs/PROTOCOL.md names 0x%04X %q but the implementing type is %q; the spec has drifted", code, row.name, im.name)
				continue
			}
			if !row.hasSize {
				continue
			}
			want, ok := pinned[im.name]
			if !ok {
				pass.Reportf(im.pos, "docs/PROTOCOL.md pins %s (0x%04X) at %d bytes but TestProtocolDocFixedSizes has no case for it; add the pin so the spec cannot drift", im.name, code, row.size)
				continue
			}
			if want != row.size {
				pass.Reportf(im.pos, "TestProtocolDocFixedSizes pins %s at %d bytes but docs/PROTOCOL.md says %d; reconcile them", im.name, want, row.size)
			}
		}
	}
	return nil
}

type implInfo struct {
	name string
	pos  token.Pos
}

// wireTypeImpl matches `func (T) WireType() uint16 { return <const> }`
// methods and returns the receiver type name and the constant code.
func wireTypeImpl(pass *lintcore.Pass, fn *ast.FuncDecl) (string, uint64, bool) {
	if fn.Name == nil || fn.Name.Name != "WireType" || fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
		return "", 0, false
	}
	recv := fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	id, ok := recv.(*ast.Ident)
	if !ok {
		return "", 0, false
	}
	var code uint64
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if v, ok := lintcore.ConstUint(pass.TypesInfo, ret.Results[0]); ok {
			code, found = v, true
		}
		return true
	})
	return id.Name, code, found
}

// rowRe matches a registry-table row: | `0xNNNN` | `Name` | ...rest.
var rowRe = regexp.MustCompile("^\\s*\\|\\s*`0[xX]([0-9A-Fa-f]{4})`\\s*\\|\\s*`?([A-Za-z0-9_]+)`?\\s*\\|(.*)\\|\\s*$")

func parseProtocolDoc(path string) (map[uint64]docRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rows := map[uint64]docRow{}
	for _, line := range strings.Split(string(data), "\n") {
		m := rowRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		code, err := strconv.ParseUint(m[1], 16, 16)
		if err != nil {
			continue
		}
		row := docRow{name: m[2]}
		cells := strings.Split(m[3], "|")
		last := strings.TrimSpace(cells[len(cells)-1])
		if n, err := strconv.Atoi(last); err == nil && len(cells) >= 2 {
			row.size, row.hasSize = n, true
		}
		rows[code] = row
	}
	return rows, nil
}

// pinRe matches one TestProtocolDocFixedSizes case:
// {"Name", pkg.Name{}, N}.
var pinRe = regexp.MustCompile(`\{\s*"([A-Za-z0-9_]+)"\s*,\s*[A-Za-z0-9_.]+\{\}\s*,\s*(\d+)\s*\}`)

func parsePinnedSizes(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pins := map[string]int{}
	for _, m := range pinRe.FindAllStringSubmatch(string(data), -1) {
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		pins[m[1]] = n
	}
	return pins, nil
}
