package wirereg_test

import (
	"testing"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore/linttest"
	"github.com/octopus-dht/octopus/tools/octolint/passes/wirereg"
)

func TestRegistryCoherence(t *testing.T) {
	linttest.RunDocRoot(t, "../../testdata/wirereg", "../../testdata/wirereg/docroot",
		wirereg.Analyzer, "wire")
}
