package atomicstats_test

import (
	"testing"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore/linttest"
	"github.com/octopus-dht/octopus/tools/octolint/passes/atomicstats"
)

func TestMixedAccess(t *testing.T) {
	linttest.Run(t, "../../testdata/atomicstats", atomicstats.Analyzer, "stats")
}
