// Package atomicstats flags struct fields that are accessed through
// sync/atomic somewhere in a package and through plain loads or stores
// somewhere else. Mixing the two is a data race even when each side looks
// locally correct — the NodeStats counters raced exactly this way in PR 4
// (atomic increments on the hot path, plain reads in Stats()) until every
// access was converted. Since PR 8 new stats should use the typed
// sync/atomic wrappers (atomic.Uint64 and friends), which make the mix
// impossible; this pass guards the remaining old-style call sites and any
// that get reintroduced.
//
// A plain access that is deliberately safe (constructor before the value
// is shared, a Reset guarded by external synchronization) takes an
// //octolint:allow atomicstats pragma with its justification.
package atomicstats

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/octopus-dht/octopus/tools/octolint/lintcore"
)

// Analyzer is the atomicstats pass.
var Analyzer = lintcore.New(&lintcore.Analyzer{
	Name: "atomicstats",
	Doc:  "flag plain loads/stores of fields accessed elsewhere via sync/atomic",
	Run:  run,
})

func run(pass *lintcore.Pass) error {
	// First sweep: every field whose address is passed to a sync/atomic
	// function, and the positions of those sanctioned uses.
	atomicFields := map[*types.Var]bool{}
	atomicUsePos := map[token.Pos]bool{}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fv := fieldVar(pass.TypesInfo, un.X); fv != nil {
					atomicFields[fv] = true
					atomicUsePos[un.X.Pos()] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Second sweep: any other selector resolving to one of those fields
	// is a plain (racy) access.
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUsePos[sel.Pos()] {
				return true
			}
			fv := fieldVar(pass.TypesInfo, sel)
			if fv == nil || !atomicFields[fv] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access of field %s, which is accessed via sync/atomic elsewhere in this package; every load/store must go through sync/atomic (or migrate the field to a typed atomic)", fv.Name())
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether the call invokes a sync/atomic
// package-level function (the old-style address-taking API).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	obj := lintcore.CalleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldVar resolves an expression to the struct field it selects, if any.
func fieldVar(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
