package main

// Gate logic: parse the govulncheck -format json stream, classify each
// reported OSV entry by the strongest evidence level govulncheck found
// (called symbol > imported package > required module), and fail only on
// called-level vulnerabilities that are not triaged in the allowlist.
// Imported/required findings are advisory — the same policy govulncheck
// itself applies in text mode — so the nightly gate stays actionable.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Evidence levels, strongest last.
const (
	levelRequired = iota // module in the build list
	levelImported        // package imported
	levelCalled          // vulnerable symbol reachable from this module
)

// message is one object in govulncheck's JSON stream. Each object carries
// exactly one of these keys; the others decode to their zero value.
type message struct {
	OSV     *osvEntry `json:"osv"`
	Finding *finding  `json:"finding"`
}

type osvEntry struct {
	ID      string `json:"id"`
	Summary string `json:"summary"`
}

type finding struct {
	OSV          string  `json:"osv"`
	FixedVersion string  `json:"fixed_version"`
	Trace        []frame `json:"trace"`
}

type frame struct {
	Module   string `json:"module"`
	Version  string `json:"version"`
	Package  string `json:"package"`
	Function string `json:"function"`
}

// report aggregates everything the gate knows about one OSV ID.
type report struct {
	ID           string
	Summary      string
	Level        int
	FixedVersion string
	Symbol       string // example reachable symbol, called-level only
}

// level classifies one finding by its most precise trace frame.
func (f *finding) level() int {
	if len(f.Trace) == 0 {
		return levelRequired
	}
	top := f.Trace[0]
	switch {
	case top.Function != "":
		return levelCalled
	case top.Package != "":
		return levelImported
	default:
		return levelRequired
	}
}

// parseStream folds a govulncheck JSON stream into per-OSV reports,
// keyed and sorted by OSV ID.
func parseStream(r io.Reader) ([]report, error) {
	byID := map[string]*report{}
	dec := json.NewDecoder(r)
	for {
		var m message
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding govulncheck stream: %w", err)
		}
		if m.OSV != nil {
			rep := byID[m.OSV.ID]
			if rep == nil {
				rep = &report{ID: m.OSV.ID, Level: levelRequired}
				byID[m.OSV.ID] = rep
			}
			rep.Summary = m.OSV.Summary
		}
		if m.Finding != nil {
			rep := byID[m.Finding.OSV]
			if rep == nil {
				rep = &report{ID: m.Finding.OSV, Level: levelRequired}
				byID[m.Finding.OSV] = rep
			}
			if lvl := m.Finding.level(); lvl > rep.Level {
				rep.Level = lvl
			}
			if m.Finding.FixedVersion != "" {
				rep.FixedVersion = m.Finding.FixedVersion
			}
			if len(m.Finding.Trace) > 0 && m.Finding.Trace[0].Function != "" && rep.Symbol == "" {
				top := m.Finding.Trace[0]
				rep.Symbol = top.Package + "." + top.Function
			}
		}
	}
	var out []report
	for _, rep := range byID {
		out = append(out, *rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// parseAllowlist reads the triage file: one "OSV-ID reason..." per line,
// '#' comments and blank lines ignored. An entry without a reason is a
// malformed triage and rejected — the whole point is recording why.
func parseAllowlist(r io.Reader) (map[string]string, error) {
	triaged := map[string]string{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, reason, ok := strings.Cut(line, " ")
		if !ok || strings.TrimSpace(reason) == "" {
			return nil, fmt.Errorf("allowlist line %d: %q has no triage reason (want \"OSV-ID reason...\")", lineNo, line)
		}
		triaged[id] = strings.TrimSpace(reason)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return triaged, nil
}

// gate applies the policy and writes a human-readable verdict to w.
// It returns the process exit code: 0 if every called-level finding is
// triaged, 1 otherwise.
func gate(reports []report, triaged map[string]string, w io.Writer) int {
	blocking := 0
	used := map[string]bool{}
	for _, rep := range reports {
		switch {
		case rep.Level < levelCalled:
			fmt.Fprintf(w, "vulngate: %s (informational — module affected, no reachable call path)\n", rep.ID)
		case triaged[rep.ID] != "":
			used[rep.ID] = true
			fmt.Fprintf(w, "vulngate: %s triaged: %s\n", rep.ID, triaged[rep.ID])
		default:
			blocking++
			fix := rep.FixedVersion
			if fix == "" {
				fix = "no fix released"
			}
			fmt.Fprintf(w, "vulngate: BLOCKING %s: %s (reached via %s; fixed in %s)\n",
				rep.ID, rep.Summary, rep.Symbol, fix)
		}
	}
	for id := range triaged {
		if !used[id] {
			fmt.Fprintf(w, "vulngate: note: allowlist entry %s no longer reported — consider removing it\n", id)
		}
	}
	fmt.Fprintf(w, "vulngate: %d vulnerabilities reported, %d blocking\n", len(reports), blocking)
	if blocking > 0 {
		return 1
	}
	return 0
}
