// Command vulngate turns govulncheck output into a CI gate with a triaged
// allowlist. The nightly workflow pipes `govulncheck -format json ./...`
// into it; the gate fails only on vulnerabilities with a reachable call
// path that nobody has triaged in .govulncheck-triage, so a new advisory
// in a merely-required module does not page anyone, and a consciously
// accepted risk is recorded with its reason instead of silenced.
//
//	govulncheck -format json ./... | go run ./tools/vulngate
//
// Allowlist format (default .govulncheck-triage, override with
// -allowlist): one "GO-YYYY-NNNN reason..." per line, '#' comments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	allowPath := flag.String("allowlist", ".govulncheck-triage", "triage allowlist file ('' to run with none)")
	in := flag.String("in", "", "read the govulncheck JSON stream from a file instead of stdin")
	flag.Parse()

	triaged := map[string]string{}
	if *allowPath != "" {
		f, err := os.Open(*allowPath)
		switch {
		case os.IsNotExist(err):
			// No triage file means nothing is triaged — valid, just strict.
		case err != nil:
			fail("open allowlist: %v", err)
		default:
			triaged, err = parseAllowlist(f)
			f.Close()
			if err != nil {
				fail("%v", err)
			}
		}
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail("open input: %v", err)
		}
		defer f.Close()
		src = f
	}
	reports, err := parseStream(src)
	if err != nil {
		fail("%v", err)
	}
	os.Exit(gate(reports, triaged, os.Stdout))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vulngate: "+format+"\n", args...)
	os.Exit(2)
}
