package main

import (
	"strings"
	"testing"
)

// stream is a canned govulncheck -format json excerpt: one called-level
// vulnerability (with its OSV metadata and a symbol-precision finding),
// one imported-only, and one module-level-only.
const stream = `
{"config":{"protocol_version":"v1.0.0","scanner_name":"govulncheck"}}
{"progress":{"message":"Scanning your code..."}}
{"osv":{"id":"GO-2024-0001","summary":"RCE in frobnicator"}}
{"osv":{"id":"GO-2024-0002","summary":"DoS in widget parser"}}
{"osv":{"id":"GO-2024-0003","summary":"Issue in unused module"}}
{"finding":{"osv":"GO-2024-0001","fixed_version":"v1.4.2","trace":[{"module":"example.com/frob","package":"example.com/frob","function":"Spin"}]}}
{"finding":{"osv":"GO-2024-0001","trace":[{"module":"example.com/frob","package":"example.com/frob"}]}}
{"finding":{"osv":"GO-2024-0002","trace":[{"module":"example.com/widget","package":"example.com/widget/parse"}]}}
{"finding":{"osv":"GO-2024-0003","trace":[{"module":"example.com/unused"}]}}
`

func parse(t *testing.T) []report {
	t.Helper()
	reports, err := parseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("parseStream: %v", err)
	}
	return reports
}

func TestParseStreamLevels(t *testing.T) {
	reports := parse(t)
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3: %+v", len(reports), reports)
	}
	wantLevels := map[string]int{
		"GO-2024-0001": levelCalled,
		"GO-2024-0002": levelImported,
		"GO-2024-0003": levelRequired,
	}
	for _, rep := range reports {
		if rep.Level != wantLevels[rep.ID] {
			t.Errorf("%s: level %d, want %d", rep.ID, rep.Level, wantLevels[rep.ID])
		}
	}
	if reports[0].Symbol != "example.com/frob.Spin" {
		t.Errorf("symbol = %q, want example.com/frob.Spin", reports[0].Symbol)
	}
	if reports[0].FixedVersion != "v1.4.2" {
		t.Errorf("fixed version = %q, want v1.4.2", reports[0].FixedVersion)
	}
}

func TestUntriagedCalledVulnBlocks(t *testing.T) {
	var out strings.Builder
	code := gate(parse(t), nil, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BLOCKING GO-2024-0001") {
		t.Errorf("output lacks blocking verdict:\n%s", out.String())
	}
	// Imported- and required-level findings must not block.
	if strings.Contains(out.String(), "BLOCKING GO-2024-0002") || strings.Contains(out.String(), "BLOCKING GO-2024-0003") {
		t.Errorf("non-called findings must be informational:\n%s", out.String())
	}
}

func TestTriagedVulnPasses(t *testing.T) {
	triaged := map[string]string{"GO-2024-0001": "frobnicator only spins test fixtures"}
	var out strings.Builder
	if code := gate(parse(t), triaged, &out); code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "triaged: frobnicator only spins test fixtures") {
		t.Errorf("triage reason not echoed:\n%s", out.String())
	}
}

func TestStaleAllowlistEntryNoted(t *testing.T) {
	triaged := map[string]string{"GO-1999-9999": "long gone"}
	var out strings.Builder
	code := gate(parse(t), triaged, &out)
	if code != 1 { // GO-2024-0001 still blocks
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "GO-1999-9999 no longer reported") {
		t.Errorf("stale entry not noted:\n%s", out.String())
	}
}

func TestAllowlistParsing(t *testing.T) {
	got, err := parseAllowlist(strings.NewReader(
		"# triage file\n\nGO-2024-0001 fixture-only call path\n"))
	if err != nil {
		t.Fatalf("parseAllowlist: %v", err)
	}
	if got["GO-2024-0001"] != "fixture-only call path" {
		t.Errorf("entry = %q", got["GO-2024-0001"])
	}
}

func TestAllowlistEntryWithoutReasonRejected(t *testing.T) {
	if _, err := parseAllowlist(strings.NewReader("GO-2024-0001\n")); err == nil {
		t.Fatal("entry without a reason must be rejected")
	}
	if _, err := parseAllowlist(strings.NewReader("GO-2024-0001   \n")); err == nil {
		t.Fatal("entry with blank reason must be rejected")
	}
}
